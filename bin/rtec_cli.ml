(* rtec_cli: run the RTEC engine from the command line.

   - [recognise] loads an event description, background knowledge and an
     event stream from files and prints the recognised maximal intervals;
   - [serve] runs a long-lived recognition session over a live feed
     (stdin or one TCP connection), with out-of-order revision and
     periodic emission;
   - [check] parses an event description and reports diagnostics;
   - [dataset] writes the synthetic maritime dataset to files usable by
     [recognise].

   Stream file format (see Rtec.Io): one fact per line —
   "happensAt(<event>, <time>)." for events and
   "holdsFor(<fluent> = <value>, [[S, E], ...])." for input fluents. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- telemetry plumbing shared by the subcommands --- *)

let trace_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a span trace and write it as a Chrome trace_event file \
              (load in chrome://tracing or Perfetto).")

let metrics_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Collect pipeline metrics and write a snapshot \
              (counters, gauges, latency histograms).")

let metrics_format_arg =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "metrics-format" ] ~docv:"FORMAT"
        ~doc:"Format of the --metrics snapshot: $(b,json) (indented JSON) or \
              $(b,prom) (Prometheus 0.0.4 text exposition).")

(* The enabled sinks are flushed at most once: normally by the explicit
   [telemetry_write] on the success path, otherwise by the [at_exit]
   handler — so a run that dies mid-recognition (exception, [exit 1])
   still leaves a valid trace/metrics file behind. *)
let telemetry_written = ref false

let telemetry_flush ~trace ~metrics ~metrics_format =
  if not !telemetry_written then begin
    telemetry_written := true;
    Option.iter Telemetry.Trace.write_chrome trace;
    Option.iter
      (match metrics_format with
      | `Json -> Telemetry.Metrics.write
      | `Prom -> Telemetry.Metrics.write_prometheus)
      metrics
  end

(* Enable the requested telemetry sinks, failing on unwritable targets
   before any work is done. *)
let telemetry_setup ~trace ~metrics ~metrics_format =
  let probe flag file =
    match open_out file with
    | oc -> close_out oc
    | exception Sys_error msg ->
      Printf.eprintf "cannot write --%s file: %s\n" flag msg;
      exit 2
  in
  Option.iter
    (fun f ->
      probe "trace" f;
      Telemetry.Trace.enable ())
    trace;
  Option.iter
    (fun f ->
      probe "metrics" f;
      Telemetry.Metrics.enable ())
    metrics;
  if Option.is_some trace || Option.is_some metrics then
    at_exit (fun () -> telemetry_flush ~trace ~metrics ~metrics_format)

let telemetry_write = telemetry_flush

(* --- recognition flags shared by [recognise] and [serve] ---

   One reusable Cmdliner term, so the two subcommands cannot drift: the
   same flag names, docs and defaults by construction. *)

type recognition_flags = {
  knowledge : string option;
  window : int option;
  step : int option;
  jobs : int;
  shards : int option;
  interpret : bool;
  provenance : string option;
}

let recognition_flags =
  let kb_arg =
    Arg.(value & opt (some file) None & info [ "knowledge"; "k" ] ~docv:"FILE"
           ~doc:"Background knowledge facts.")
  in
  let window_arg =
    Arg.(value & opt (some int) None & info [ "window"; "w" ] ~docv:"SECONDS"
           ~doc:"Sliding window size; omit for a single query over the whole stream.")
  in
  let step_arg =
    Arg.(value & opt (some int) None & info [ "step"; "s" ] ~docv:"SECONDS"
           ~doc:"Query step (defaults to the window size).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains: shard the stream by entity and recognise the \
                 shards in parallel. The result is bit-identical to --jobs 1.")
  in
  let shards_arg =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Shard-count override (defaults to --jobs); more shards than \
                 jobs gives finer load balancing. (serve shards dynamically, \
                 one entity component per shard, and ignores this flag.)")
  in
  let interpret_arg =
    Arg.(value & flag & info [ "interpret" ]
           ~doc:"Skip rule compilation and run the tree-walking evaluator — the \
                 differential oracle. The result is bit-identical to the default \
                 compiled run.")
  in
  let provenance_arg =
    Arg.(
      value
      & opt ~vopt:(Some "always") (some string) None
      & info [ "provenance" ] ~docv:"MODE"
          ~doc:"Record compact derivation provenance during recognition: \
                $(b,always) (the default when the flag is given bare), \
                $(b,sample:N) (a deterministic 1-in-N window subset) or \
                $(b,sample:N:SEED). Recognition output is unchanged; recorder \
                stats are printed as a comment line.")
  in
  let mk knowledge window step jobs shards interpret provenance =
    { knowledge; window; step; jobs; shards; interpret; provenance }
  in
  Term.(
    const mk $ kb_arg $ window_arg $ step_arg $ jobs_arg $ shards_arg $ interpret_arg
    $ provenance_arg)

let parse_provenance spec =
  match String.split_on_char ':' spec with
  | [ "always" ] -> Rtec.Derivation.Always
  | [ "sample"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Rtec.Derivation.One_in { n; seed = 0 }
    | _ ->
      Printf.eprintf "invalid --provenance sample count: %s\n" spec;
      exit 2)
  | [ "sample"; n; seed ] -> (
    match (int_of_string_opt n, int_of_string_opt seed) with
    | Some n, Some seed when n > 0 -> Rtec.Derivation.One_in { n; seed }
    | _ ->
      Printf.eprintf "invalid --provenance sample spec: %s\n" spec;
      exit 2)
  | _ ->
    Printf.eprintf "invalid --provenance mode: %s (expected always or sample:N[:SEED])\n"
      spec;
    exit 2

let load_event_description file =
  match Rtec.Parser.parse_clauses_result (read_file file) with
  | Error e ->
    Printf.eprintf "parse error in %s: %s\n" file e;
    exit 1
  | Ok rules -> [ { Rtec.Ast.name = Filename.basename file; rules } ]

let load_knowledge = function
  | None -> Rtec.Knowledge.empty
  | Some f -> Rtec.Knowledge.of_source (read_file f)

let print_provenance_stats fmt =
  let s = Rtec.Derivation.stats () in
  Format.fprintf fmt
    "%% provenance: %d records (%d evicted), %d/%d windows sampled, %d KiB retained@."
    s.Rtec.Derivation.records s.Rtec.Derivation.evicted s.Rtec.Derivation.windows_sampled
    (s.Rtec.Derivation.windows_sampled + s.Rtec.Derivation.windows_skipped)
    (s.Rtec.Derivation.retained_words * (Sys.word_size / 8) / 1024)

(* --- check --- *)

let check_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  let maritime_voc =
    Arg.(value & flag & info [ "maritime" ] ~doc:"Check against the maritime vocabulary.")
  in
  let run ed_file maritime =
    match Rtec.Parser.parse_clauses_result (read_file ed_file) with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
    | Ok rules ->
      let ed = [ { Rtec.Ast.name = Filename.basename ed_file; rules } ] in
      let vocabulary =
        if maritime then Some Maritime.Vocabulary.check_vocabulary else None
      in
      let diags = Rtec.Check.check ?vocabulary ed in
      List.iter (fun d -> Format.printf "%a@." Rtec.Check.pp_diagnostic d) diags;
      if Rtec.Check.usable ?vocabulary ed then Format.printf "ok: usable@."
      else exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse an event description and report diagnostics.")
    Term.(const run $ ed_arg $ maritime_voc)

(* --- recognise --- *)

let recognise_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  (* One or more stream files: batches arriving separately (per-day
     dumps, per-source feeds) are folded into a single ordered stream
     with [Stream.of_batches] — each fold step is an instrumented
     [Stream.append], so the telemetry snapshot reports how the input
     was assembled (stream.appends, stream.append_events). *)
  let stream_arg = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"STREAM") in
  let fluent_arg =
    Arg.(value & opt (some string) None & info [ "fluent"; "f" ] ~docv:"NAME/ARITY"
           ~doc:"Only print instances of this fluent, e.g. trawling/1.")
  in
  let run ed_file stream_files (flags : recognition_flags) fluent trace metrics
      metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    let ed = load_event_description ed_file in
    let knowledge = load_knowledge flags.knowledge in
    let stream =
      Rtec.Stream.of_batches
        (List.map (fun f -> Rtec.Io.stream_of_string (read_file f)) stream_files)
    in
    let config =
      Runtime.config ?window:flags.window ?step:flags.step ~jobs:flags.jobs
        ?shards:flags.shards ~compile:(not flags.interpret) ()
    in
    let outcome =
      match flags.provenance with
      | None -> Runtime.run ~config ~event_description:ed ~knowledge ~stream ()
      | Some spec ->
        let sampling = parse_provenance spec in
        Result.map
          (fun (run : Provenance.run) -> (run.Provenance.result, run.Provenance.stats))
          (Provenance.recognise ~config ~sampling ~event_description:ed ~knowledge
             ~stream ())
    in
    match outcome with
    | Error e ->
      Printf.eprintf "recognition failed: %s\n" e;
      exit 1
    | Ok (result, stats) ->
      telemetry_write ~trace ~metrics ~metrics_format;
      Format.printf "%% %d queries, %d window-events, %d shard(s) on %d domain(s)@."
        stats.queries stats.events_processed stats.shards stats.jobs;
      if Option.is_some flags.provenance then print_provenance_stats Format.std_formatter;
      let selected =
        match fluent with
        | None -> result
        | Some spec -> (
          match String.split_on_char '/' spec with
          | [ name; arity ] -> Rtec.Engine.find_fluent result (name, int_of_string arity)
          | _ -> failwith "expected NAME/ARITY")
      in
      List.iter
        (fun ((f, v), spans) ->
          Format.printf "holdsFor(%a = %a, %a).@." Rtec.Term.pp f Rtec.Term.pp v
            Rtec.Interval.pp spans)
        selected
  in
  Cmd.v
    (Cmd.info "recognise"
       ~doc:"Run the engine over one or more stream files (appended in argument \
             order) and print maximal intervals.")
    Term.(
      const run $ ed_arg $ stream_arg $ recognition_flags $ fluent_arg $ trace_arg
      $ metrics_arg $ metrics_format_arg)

(* --- serve --- *)

let serve_cmd =
  let ed_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"EVENT_DESCRIPTION")
  in
  let horizon_arg =
    Arg.(value & opt int 0 & info [ "horizon" ] ~docv:"SECONDS"
           ~doc:"Revision horizon: accept an out-of-order event up to this far \
                 behind the last query, rolling the affected entity's state back \
                 and re-evaluating the overlapping windows. Older events are \
                 counted and dropped. Default 0: drop every late event.")
  in
  let ttl_arg =
    Arg.(value & opt (some int) None & info [ "ttl" ] ~docv:"SECONDS"
           ~doc:"Evict an entity's working state once no event has arrived for \
                 it in this long (clamped to at least one window). Its \
                 recognised intervals stay in the emitted result.")
  in
  let listen_arg =
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT"
           ~doc:"Accept one TCP connection on 127.0.0.1:PORT and serve it \
                 instead of stdin/stdout.")
  in
  let tick_every_arg =
    Arg.(value & opt (some int) None & info [ "tick-every" ] ~docv:"SECONDS"
           ~doc:"Advance the query grid whenever the event-time watermark has \
                 moved this far since the last tick. Default: tick only on \
                 $(b,tick(T).) control lines and at end of input.")
  in
  let emit_arg =
    Arg.(
      value
      & opt (enum [ ("final", `Final); ("ticks", `Ticks) ]) `Final
      & info [ "emit" ] ~docv:"WHEN"
          ~doc:"When to emit recognised intervals: $(b,final) (once, at end of \
                input — the same output recognise prints) or $(b,ticks) (a full \
                snapshot after every tick, each preceded by a '% tick' comment \
                line).")
  in
  let run ed_file (flags : recognition_flags) horizon ttl listen tick_every emit trace
      metrics metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    Option.iter
      (fun spec ->
        Rtec.Derivation.enable ();
        Rtec.Derivation.set_sampling (parse_provenance spec))
      flags.provenance;
    let ed = load_event_description ed_file in
    let knowledge = load_knowledge flags.knowledge in
    let svc =
      Runtime.Service.create
        ~config:
          (Runtime.Service.config ?window:flags.window ?step:flags.step ~jobs:flags.jobs
             ~compile:(not flags.interpret) ~horizon ?ttl ())
        ~event_description:ed ~knowledge ()
    in
    let ic, oc, cleanup =
      match listen with
      | None -> (stdin, stdout, fun () -> ())
      | Some port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen sock 1;
        Printf.eprintf "listening on 127.0.0.1:%d\n%!" port;
        let conn, _ = Unix.accept sock in
        ( Unix.in_channel_of_descr conn,
          Unix.out_channel_of_descr conn,
          fun () ->
            (try Unix.close conn with Unix.Unix_error _ -> ());
            try Unix.close sock with Unix.Unix_error _ -> () )
    in
    let fmt = Format.formatter_of_out_channel oc in
    let emit_intervals (r : Runtime.Service.result) =
      List.iter
        (fun ((f, v), spans) ->
          Format.fprintf fmt "holdsFor(%a = %a, %a).@." Rtec.Term.pp f Rtec.Term.pp v
            Rtec.Interval.pp spans)
        r.intervals;
      Format.pp_print_flush fmt ();
      flush oc
    in
    let fail e =
      cleanup ();
      Printf.eprintf "recognition failed: %s\n" e;
      exit 1
    in
    (* Live telemetry: refresh the --metrics snapshot at every tick, so a
       scraper sees current counters while the service runs. *)
    let snapshot_metrics () =
      Option.iter
        (match metrics_format with
        | `Json -> Telemetry.Metrics.write
        | `Prom -> Telemetry.Metrics.write_prometheus)
        metrics
    in
    let last_tick = ref None in
    let tick ~now =
      match Runtime.Service.tick svc ~now with
      | Error e -> fail e
      | Ok r ->
        last_tick := Some now;
        snapshot_metrics ();
        if emit = `Ticks then begin
          Format.fprintf fmt "%% tick %d: %d queries, %d entity shard(s), watermark %s@."
            now r.stats.queries r.stats.buckets
            (match r.watermark with None -> "-" | Some w -> string_of_int w);
          emit_intervals r
        end
    in
    let ingest_line line =
      match Rtec.Io.items_of_string line with
      | items -> (
        Runtime.Service.ingest svc items;
        match (tick_every, Runtime.Service.watermark svc) with
        | Some n, Some wm
          when (match !last_tick with None -> true | Some t -> wm >= t + n) ->
          tick ~now:wm
        | _ -> ())
      | exception (Invalid_argument msg | Failure msg) ->
        Printf.eprintf "ignoring bad input line: %s\n%!" msg
    in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line = "" || line.[0] = '%' then ()
         else
           match Scanf.sscanf_opt line "tick(%d)." (fun t -> t) with
           | Some t -> tick ~now:t
           | None -> ingest_line line
       done
     with End_of_file -> ());
    (match Runtime.Service.drain svc with
    | Error e -> fail e
    | Ok r ->
      telemetry_write ~trace ~metrics ~metrics_format;
      let s = r.stats in
      Format.fprintf fmt "%% %d queries, %d window-events, %d shard(s) on %d domain(s)@."
        s.queries s.events_processed s.buckets s.jobs;
      Format.fprintf fmt
        "%% %d appends, %d late events (%d dropped), %d revisions, %d active / %d \
         evicted entities@."
        s.appends s.late_events s.dropped_late s.revisions s.entities_active
        s.entities_evicted;
      if Option.is_some flags.provenance then print_provenance_stats fmt;
      emit_intervals r);
    cleanup ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a long-lived recognition session over a live feed: stream facts \
             arrive as happensAt/holdsFor lines on stdin (or one TCP connection \
             with --listen), the query grid advances on tick(T). control lines, \
             --tick-every watermark progress, or end of input, and recognised \
             intervals are emitted incrementally (--emit ticks) or once at the \
             end. Out-of-order events within --horizon trigger revision of the \
             affected entity's windows; idle entities are evicted after --ttl."
       ~man:
         [
           `S Manpage.s_examples;
           `P "rtec dataset -o /tmp/ais && \\";
           `P "  rtec serve /tmp/ais.ed -k /tmp/ais.kb -w 3600 --horizon 600 \\";
           `P "    --emit ticks --tick-every 3600 < /tmp/ais.stream";
         ])
    Term.(
      const run $ ed_arg $ recognition_flags $ horizon_arg $ ttl_arg $ listen_arg
      $ tick_every_arg $ emit_arg $ trace_arg $ metrics_arg $ metrics_format_arg)

(* --- explain --- *)

let explain_cmd =
  let gold_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"GOLD_ED") in
  let gen_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"GENERATED_ED") in
  let stream_arg = Arg.(required & pos 2 (some file) None & info [] ~docv:"STREAM") in
  let kb_arg =
    Arg.(value & opt (some file) None & info [ "knowledge"; "k" ] ~docv:"FILE"
           ~doc:"Background knowledge facts.")
  in
  let window_arg =
    Arg.(value & opt (some int) None & info [ "window"; "w" ] ~docv:"SECONDS"
           ~doc:"Sliding window size; omit for a single query over the whole stream.")
  in
  let step_arg =
    Arg.(value & opt (some int) None & info [ "step"; "s" ] ~docv:"SECONDS"
           ~doc:"Query step (defaults to the window size).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for each of the two recognition runs.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the attribution report as JSON.")
  in
  let proof_arg =
    Arg.(value & opt (some string) None & info [ "proof" ] ~docv:"FILE"
           ~doc:"Write the generated description's derivation records (proof \
                 trees) as structured JSON.")
  in
  let proof_chrome_arg =
    Arg.(value & opt (some string) None & info [ "proof-chrome" ] ~docv:"FILE"
           ~doc:"Write the generated description's derivation records as a \
                 Chrome trace_event file (one track per activity; load in \
                 chrome://tracing or Perfetto).")
  in
  let sample_arg =
    Arg.(
      value & opt string "full"
      & info [ "sample" ] ~docv:"MODE"
          ~doc:"Provenance recording mode for the two recognition runs: \
                $(b,full) (every window), $(b,divergent) (only windows near \
                diverging spans, located by a recorder-off probe pass) or \
                $(b,sample:N[:SEED]) (a deterministic 1-in-N window subset).")
  in
  let run gold_file gen_file stream_file kb_file window step jobs sample json proof
      proof_chrome trace metrics metrics_format =
    telemetry_setup ~trace ~metrics ~metrics_format;
    let sample =
      match String.split_on_char ':' sample with
      | [ "full" ] -> `Full
      | [ "divergent" ] -> `Divergent
      | [ "sample"; n ] when Option.is_some (int_of_string_opt n) ->
        `One_in (int_of_string n, 0)
      | [ "sample"; n; seed ]
        when Option.is_some (int_of_string_opt n) && Option.is_some (int_of_string_opt seed)
        ->
        `One_in (int_of_string n, int_of_string seed)
      | _ ->
        Printf.eprintf "invalid --sample mode (expected full, divergent or sample:N[:SEED])\n";
        exit 2
    in
    let parse_ed file =
      match Rtec.Parser.parse_clauses_result (read_file file) with
      | Error e ->
        Printf.eprintf "parse error in %s: %s\n" file e;
        exit 1
      | Ok rules ->
        [
          {
            Rtec.Ast.name = Filename.remove_extension (Filename.basename file);
            rules = Rtec.Ast.with_ids ~name:(Filename.remove_extension (Filename.basename file)) rules;
          };
        ]
    in
    let gold = parse_ed gold_file and generated = parse_ed gen_file in
    let knowledge =
      match kb_file with
      | None -> Rtec.Knowledge.empty
      | Some f -> Rtec.Knowledge.of_source (read_file f)
    in
    let stream = Rtec.Io.stream_of_string (read_file stream_file) in
    let config = Runtime.config ?window ?step ~jobs () in
    (match (proof, proof_chrome) with
    | None, None -> ()
    | _ -> (
      match Provenance.recognise ~config ~event_description:generated ~knowledge ~stream () with
      | Error e ->
        Printf.eprintf "recognition failed: %s\n" e;
        exit 1
      | Ok run ->
        (* Force the lazy proof reconstruction now: the Diff runs below
           reset the recorder buffer these records decode from. *)
        let events = Lazy.force run.Provenance.events in
        Option.iter
          (fun f -> Telemetry.Json.write_file ~indent:true f (Provenance.Export.proof_to_json events))
          proof;
        Option.iter
          (fun f -> Telemetry.Json.write_file f (Provenance.Export.proof_to_chrome events))
          proof_chrome));
    match Provenance.Diff.diff ~config ~sample ~gold ~generated ~knowledge ~stream () with
    | Error e ->
      Printf.eprintf "explain failed: %s\n" e;
      exit 1
    | Ok report ->
      telemetry_write ~trace ~metrics ~metrics_format;
      Option.iter
        (fun f -> Telemetry.Json.write_file ~indent:true f (Provenance.Diff.report_to_json report))
        json;
      Format.printf "%a@?" Provenance.Diff.pp_report report;
      if report.Provenance.Diff.total_fp + report.Provenance.Diff.total_fn > 0 then exit 3
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Recognise a gold and a generated event description over the same \
             stream and attribute every diverging (FP/FN) time-point to the \
             responsible rule and body condition. Exits 3 when the \
             descriptions diverge."
       ~man:
         [
           `S Manpage.s_examples;
           `P "rtec explain gold.ed generated.ed dataset.stream -k dataset.kb \\";
           `P "  --json explain.json --proof-chrome proof.trace";
         ])
    Term.(
      const run $ gold_arg $ gen_arg $ stream_arg $ kb_arg $ window_arg $ step_arg
      $ jobs_arg $ sample_arg $ json_arg $ proof_arg $ proof_chrome_arg $ trace_arg
      $ metrics_arg $ metrics_format_arg)

(* --- dataset --- *)

let dataset_cmd =
  let out_arg =
    Arg.(value & opt string "dataset" & info [ "output"; "o" ] ~docv:"PREFIX"
           ~doc:"Output prefix; writes PREFIX.stream and PREFIX.kb.")
  in
  let seed_arg = Arg.(value & opt int 20250325 & info [ "seed" ] ~docv:"N") in
  let replicas_arg = Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"N") in
  let run prefix seed replicas =
    let config = { Maritime.Dataset.seed; replicas; nominal = replicas + 1 } in
    let data = Maritime.Dataset.generate ~config () in
    let oc = open_out (prefix ^ ".stream") in
    Rtec.Io.write_stream oc data.stream;
    close_out oc;
    let oc = open_out (prefix ^ ".kb") in
    Rtec.Io.write_knowledge oc data.knowledge;
    close_out oc;
    let oc = open_out (prefix ^ ".ed") in
    output_string oc (Rtec.Printer.event_description_to_string Maritime.Gold.event_description);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote %s.stream (%d events), %s.kb (%d facts), %s.ed\n" prefix
      (Rtec.Stream.size data.stream) prefix
      (Rtec.Knowledge.size data.knowledge)
      prefix
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate the synthetic maritime dataset as files.")
    Term.(const run $ out_arg $ seed_arg $ replicas_arg)

let () =
  let doc = "Run-Time Event Calculus command-line interface." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "rtec" ~doc)
          [ check_cmd; recognise_cmd; serve_cmd; explain_cmd; dataset_cmd ]))
