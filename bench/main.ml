(* Benchmark harness.

   Running this executable (a) regenerates every figure of the paper's
   evaluation (Figures 2a, 2b, 2c) on the synthetic substrate, and (b)
   runs Bechamel micro-benchmarks over the performance-critical pieces:
   the interval algebra, the Kuhn-Munkres assignment kernel, the
   similarity metric, the prompting pipeline and the recognition engine
   with a window-size sweep (RTEC's headline optimisation). *)

open Bechamel
open Toolkit

(* --- figure reproduction --- *)

let print_figures () =
  Format.printf "==============================================================@.";
  Format.printf "Figure reproduction (see EXPERIMENTS.md for the comparison)@.";
  Format.printf "==============================================================@.";
  Evaluation.Report.print_all Format.std_formatter ();
  Format.printf "@."

(* --- benchmark fixtures --- *)

let spans_a = Rtec.Interval.of_list (List.init 200 (fun i -> (i * 10, (i * 10) + 6)))
let spans_b = Rtec.Interval.of_list (List.init 200 (fun i -> ((i * 10) + 3, (i * 10) + 8)))

let cost_matrix n =
  Array.init n (fun i ->
      Array.init n (fun j -> float_of_int (((i * 31) + (j * 17)) mod 100) /. 100.))

let matrix_16 = cost_matrix 16
let matrix_64 = cost_matrix 64
let gold_rules = Rtec.Ast.all_rules Maritime.Gold.event_description

let mutated_rules =
  let mutate (d : Rtec.Ast.definition) =
    Adg.Error_model.apply_all
      [ Adg.Error_model.Rename ("entersArea", "inArea"); Adg.Error_model.Add_redundant ]
      d
  in
  Rtec.Ast.all_rules (List.map mutate Maritime.Gold.event_description)

let trawling_rules = (Maritime.Gold.definition "trawling").rules

let trawling_mutated =
  (Adg.Error_model.apply Adg.Error_model.Add_redundant (Maritime.Gold.definition "trawling"))
    .rules

let small_dataset =
  Maritime.Dataset.generate
    ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 1 }
    ()

(* More background vessels than the fig2c fixture so the entity
   partition yields four-plus balanced shards for the jobs-scaling rows.
   Lazy: the smoke suite never touches it. *)
let multicore_dataset =
  lazy
    (Maritime.Dataset.generate
       ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 3 }
       ())

let recognise ~window ~step () =
  match
    Runtime.run
      ~config:(Runtime.config ~window ~step ())
      ~event_description:Maritime.Gold.event_description
      ~knowledge:small_dataset.knowledge ~stream:small_dataset.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

(* The interpreted oracle on the same workload: [compile:false] forces
   the tree-walking evaluator the compiled closure chains are checked
   against, so the row pair prices the compilation win directly. *)
let recognise_interp ~window ~step () =
  match
    Runtime.run
      ~config:(Runtime.config ~window ~step ~compile:false ())
      ~event_description:Maritime.Gold.event_description
      ~knowledge:small_dataset.knowledge ~stream:small_dataset.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let recognise_multicore ~jobs () =
  let d = Lazy.force multicore_dataset in
  match
    Runtime.run
      ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs ())
      ~event_description:Maritime.Gold.event_description ~knowledge:d.knowledge
      ~stream:d.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let o1_profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot

(* A full generated session for the similarity-sweep rows. Lazy: the
   sweep group forces it once; the smoke suite pays for it only when the
   group is selected. *)
let o1_session = lazy (Adg.Session.run (Adg.Profiles.backend o1_profile))

let tests =
  [
    Test.make_grouped ~name:"interval"
      [
        Test.make ~name:"union_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.union_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"intersect_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.intersect_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"relative_complement-200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.relative_complement_all spans_a [ spans_b ])));
        Test.make ~name:"from_points-200"
          (Staged.stage (fun () ->
               ignore
                 (Rtec.Interval.from_points
                    ~starts:(List.init 200 (fun i -> i * 10))
                    ~stops:(List.init 200 (fun i -> (i * 10) + 5)))));
      ];
    Test.make_grouped ~name:"assignment"
      [
        Test.make ~name:"kuhn-munkres-16"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_16)));
        Test.make ~name:"kuhn-munkres-64"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_64)));
      ];
    Test.make_grouped ~name:"similarity-fig2a-2b-kernel"
      [
        Test.make ~name:"rule-distance"
          (Staged.stage (fun () ->
               ignore
                 (Similarity.Distance.rule (List.hd trawling_rules)
                    (List.hd trawling_mutated))));
        Test.make ~name:"definition-similarity"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.similarity trawling_mutated trawling_rules)));
        Test.make ~name:"event-description-distance"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
        (* Same workload with the rule-pair memo emptied first: the
           honest uncached kernel number. The warm row above amortises
           the memo across iterations, which is exactly how the fig2a
           sweep uses it. *)
        Test.make ~name:"event-description-distance-cold"
          (Staged.stage (fun () ->
               Similarity.Distance.clear_cache ();
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
      ];
    (* The fig2a inner loop at table granularity: one generated session
       graded against every gold entry, sequentially and fanned over two
       worker domains. Values are bit-identical across rows; the delta is
       pure domain fan-out cost or gain of the host. *)
    Test.make_grouped ~name:"similarity-sweep"
      [
        Test.make ~name:"table-jobs-1"
          (Staged.stage (fun () ->
               ignore
                 (Evaluation.Experiments.similarity_table ~jobs:1 (Lazy.force o1_session))));
        Test.make ~name:"table-jobs-2"
          (Staged.stage (fun () ->
               ignore
                 (Evaluation.Experiments.similarity_table ~jobs:2 (Lazy.force o1_session))));
      ];
    Test.make_grouped ~name:"generation-fig2a-kernel"
      [
        Test.make ~name:"o1-session-one-activity"
          (Staged.stage (fun () ->
               let backend = Adg.Profiles.backend o1_profile in
               ignore (Adg.Session.run ~activities:[ "trawling" ] backend)));
      ];
    Test.make_grouped ~name:"recognition-fig2c-kernel"
      [
        Test.make ~name:"window-1h-step-30min" (Staged.stage (recognise ~window:3600 ~step:1800));
        Test.make ~name:"window-2h-step-1h" (Staged.stage (recognise ~window:7200 ~step:3600));
        Test.make ~name:"window-4h-step-2h" (Staged.stage (recognise ~window:14400 ~step:7200));
        (* Interpreted oracle on the headline row: the compiled/interpreted
           ratio in the trajectory file is the speedup attribution
           EXPERIMENTS.md quotes. *)
        Test.make ~name:"window-1h-step-30min-interpreted"
          (Staged.stage (recognise_interp ~window:3600 ~step:1800));
      ];
    (* Jobs-scaling sweep over the fig2c workload: the same sliding
       window recognised sequentially and on 2 and 4 worker domains.
       Sharding conserves engine work exactly (the partition is
       work-neutral), so these rows isolate the domain fan-out cost or
       gain of the host: near-linear gains on a multicore machine,
       GC-barrier overhead on a single-core one (see EXPERIMENTS.md). *)
    Test.make_grouped ~name:"recognition-fig2c-multicore"
      [
        Test.make ~name:"window-1h-jobs-1" (Staged.stage (recognise_multicore ~jobs:1));
        Test.make ~name:"window-1h-jobs-2" (Staged.stage (recognise_multicore ~jobs:2));
        Test.make ~name:"window-1h-jobs-4" (Staged.stage (recognise_multicore ~jobs:4));
      ];
    Test.make_grouped ~name:"fleet-domain"
      [
        (let stream, knowledge = Fleet.generate () in
         let ed = Domain.event_description Fleet.domain in
         Test.make ~name:"recognition-window-1h"
           (Staged.stage (fun () ->
                match
                  Runtime.run
                    ~config:(Runtime.config ~window:3600 ~step:1800 ())
                    ~event_description:ed ~knowledge ~stream ()
                with
                | Ok _ -> ()
                | Error e -> failwith e)));
      ];
    (* Compiled vs interpreted on the cheap fleet workload: the row pair
       runs in the smoke suite, so every CI pass re-measures the
       compilation win on a workload light enough for the quota. Rows
       are bit-identical in output (the differential suite enforces it);
       the delta is pure evaluator cost. *)
    (let stream, knowledge = Fleet.generate () in
     let ed = Domain.event_description Fleet.domain in
     let run ~compile () =
       match
         Runtime.run
           ~config:(Runtime.config ~window:3600 ~step:1800 ~compile ())
           ~event_description:ed ~knowledge ~stream ()
       with
       | Ok _ -> ()
       | Error e -> failwith e
     in
     Test.make_grouped ~name:"compiled-vs-interpreted"
       [
         Test.make ~name:"fleet-window-1h-compiled" (Staged.stage (run ~compile:true));
         Test.make ~name:"fleet-window-1h-interpreted" (Staged.stage (run ~compile:false));
       ]);
    (* Batched-arrival assembly: the fig2c stream re-assembled from
       per-hour batches through [Stream.of_batches] — the ingestion path
       a chunked front-end takes (rtec_cli with several STREAM files,
       ROADMAP item 2's service). Prices the instrumented [Stream.append]
       fold and keeps the [stream.appends] counter live in the committed
       metrics snapshot. *)
    (let hourly_batches =
       let by_hour = Hashtbl.create 32 in
       List.iter
         (fun (e : Rtec.Stream.event) ->
           let h = e.time / 3600 in
           let prev = try Hashtbl.find by_hour h with Not_found -> [] in
           Hashtbl.replace by_hour h (e :: prev))
         (Rtec.Stream.events small_dataset.stream);
       let hours =
         List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) by_hour [])
       in
       List.mapi
         (fun i h ->
           Rtec.Stream.make
             ~input_fluents:
               (if i = 0 then Rtec.Stream.input_fluents small_dataset.stream else [])
             (List.rev (Hashtbl.find by_hour h)))
         hours
     in
     Test.make_grouped ~name:"stream-assembly"
       [
         Test.make ~name:"of-batches-hourly"
           (Staged.stage (fun () -> ignore (Rtec.Stream.of_batches hourly_batches)));
       ]);
    (* Derivation-recorder overhead on the fleet sliding-window workload:
       the recorder-off row measures the gated (production-default) path —
       a single branch per probe site, held to the same 2% drift budget as
       every instrumented row — and the recorder-on row prices full
       proof-tree capture. The on-row resets the buffer around each run
       so memory stays bounded across iterations. *)
    (let stream, knowledge = Fleet.generate () in
     let ed = Domain.event_description Fleet.domain in
     let run () =
       match
         Runtime.run
           ~config:(Runtime.config ~window:3600 ~step:1800 ())
           ~event_description:ed ~knowledge ~stream ()
       with
       | Ok _ -> ()
       | Error e -> failwith e
     in
     Test.make_grouped ~name:"provenance-overhead"
       [
         Test.make ~name:"recorder-off" (Staged.stage run);
         Test.make ~name:"recorder-on"
           (Staged.stage (fun () ->
                Rtec.Derivation.reset ();
                Rtec.Derivation.enable ();
                Fun.protect
                  ~finally:(fun () ->
                    Rtec.Derivation.disable ();
                    Rtec.Derivation.reset ())
                  run));
       ]);
  ]

(* Smoke-only parallel row: recognises the (cheap) fleet workload on
   [jobs] worker domains, exercising the pool, the entity partition and
   the per-domain telemetry merge in CI. The row name embeds the jobs
   value, so the drift gate only compares it against a baseline recorded
   with the same fan-out — and skips it against the sequential full-sweep
   baseline. *)
let multicore_smoke ~jobs =
  let stream, knowledge = Fleet.generate () in
  let ed = Domain.event_description Fleet.domain in
  Test.make_grouped ~name:"multicore-smoke"
    [
      Test.make
        ~name:(Printf.sprintf "fleet-window-1h-jobs-%d" jobs)
        (Staged.stage (fun () ->
             match
               Runtime.run
                 ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs ())
                 ~event_description:ed ~knowledge ~stream ()
             with
             | Ok _ -> ()
             | Error e -> failwith e));
    ]

(* Everything but the slow fig2c recognition kernels (~150 ms/run):
   enough to verify the harness (fixtures build, bechamel runs, the
   table and JSON writers work) without the full sweep. The fleet
   recognition kernel (~2 ms/run) makes the smoke run exercise
   Runtime.run/Window/Engine and their telemetry counters (delta runs,
   cache hits); the similarity/generation kernels give the overhead gate
   enough instrumented rows for a stable median. *)
let smoke_tests ~jobs =
  List.filter
    (fun group ->
      List.mem (Test.name group)
        [
          "interval";
          "assignment";
          "fleet-domain";
          "compiled-vs-interpreted";
          "stream-assembly";
          "provenance-overhead";
          "similarity-fig2a-2b-kernel";
          "similarity-sweep";
          "generation-fig2a-kernel";
        ])
    tests
  @ [ multicore_smoke ~jobs ]

let benchmark ~smoke ~jobs =
  (* Normalise heap state before measuring: the full sweep prints every
     figure first and interleaves heavy recognition workloads, and the
     expanded major heap they leave behind taxes the sub-microsecond
     kernels (different GC pacing, worse locality) — enough to skew the
     smoke-vs-full comparison the CI drift gate depends on. *)
  Gc.compact ();
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* One quota for smoke and full sweeps: the OLS estimate of a short
     benchmark depends systematically on the iteration counts the quota
     allows (longer quota -> larger batches -> less amortised fixed
     overhead in the slope), so the overhead gate is only meaningful
     when the check run and the baseline were measured identically. *)
  let quota = 0.5 in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:(Some 500) () in
  let suite = if smoke then smoke_tests ~jobs else tests in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"adg" suite) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> (name, Some est)
      | Some _ | None -> (name, None))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* Repeated measurement with a per-benchmark minimum. Scheduler
   preemption and frequency scaling only ever make a run *slower*, so
   the min over [repeat] passes estimates the true cost far more stably
   than any single pass — which is what a small-tolerance overhead gate
   needs. A systematic instrumentation cost shifts the minimum too, so
   the gate still catches it. *)
let benchmark_min ~smoke ~repeat ~jobs =
  let min_est a b =
    match (a, b) with
    | Some a, Some b -> Some (Float.min a b)
    | (Some _ as x), None | None, x -> x
  in
  let best = ref [] in
  for pass = 1 to repeat do
    if repeat > 1 then Format.printf "benchmark pass %d/%d...@." pass repeat;
    let rows = benchmark ~smoke ~jobs in
    best :=
      if !best = [] then rows
      else List.map (fun (name, est) -> (name, min_est est (List.assoc name !best))) rows
  done;
  let rows = !best in
  Format.printf "==============================================================@.";
  Format.printf "Micro-benchmarks (monotonic clock, ns/run%s)@."
    (if repeat > 1 then Printf.sprintf ", min of %d passes" repeat else "");
  Format.printf "==============================================================@.";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "%-60s %16.1f ns/run@." name est
      | None -> Format.printf "%-60s %16s@." name "n/a")
    rows;
  rows

(* Single-shot allocation attribution. Bechamel prices time; this pass
   prices memory: each fixed workload runs exactly once between
   [Gc.quick_stat] readings (after a compaction, so a previous row's
   heap shape cannot leak into the delta), and the deltas land in the
   metrics snapshot as gauges — so the trajectory file carries the
   allocation story (`bench.gc.minor_words/...`) next to the timings it
   explains. The compiled/interpreted pairs quantify the hot-path
   allocation cut of the rule compiler; the gate below holds it. *)
let gc_rows () =
  let fleet_stream, fleet_knowledge = Fleet.generate () in
  let fleet_ed = Domain.event_description Fleet.domain in
  let fleet ~compile () =
    match
      Runtime.run
        ~config:(Runtime.config ~window:3600 ~step:1800 ~compile ())
        ~event_description:fleet_ed ~knowledge:fleet_knowledge ~stream:fleet_stream ()
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  [
    ("fig2c-window-1h-compiled", recognise ~window:3600 ~step:1800);
    ("fig2c-window-1h-interpreted", recognise_interp ~window:3600 ~step:1800);
    ("fleet-window-1h-compiled", fleet ~compile:true);
    ("fleet-window-1h-interpreted", fleet ~compile:false);
  ]

let sample_gc () =
  Format.printf "==============================================================@.";
  Format.printf "GC attribution (single shot per row)@.";
  Format.printf "==============================================================@.";
  let compiled_hit = Telemetry.Metrics.counter "engine.compiled.hit" in
  let compiled_miss = Telemetry.Metrics.counter "engine.compiled.miss" in
  let hit0 = Telemetry.Metrics.value compiled_hit in
  let miss0 = Telemetry.Metrics.value compiled_miss in
  List.iter
    (fun (name, run) ->
      Gc.compact ();
      let s0 = Gc.quick_stat () in
      run ();
      let s1 = Gc.quick_stat () in
      let minor = s1.Gc.minor_words -. s0.Gc.minor_words in
      let majors = s1.Gc.major_collections - s0.Gc.major_collections in
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge ("bench.gc.minor_words/" ^ name))
        minor;
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge ("bench.gc.major_collections/" ^ name))
        (float_of_int majors);
      Format.printf "%-42s %14.0f minor words  %4d major collections@." name minor majors)
    (gc_rows ());
  (* The compiled-cache counter deltas over exactly this pass — the same
     fixed workloads whichever suite ran before it — give the fallback
     share of transition-rule evaluations: 0 when every rule compiled, 1
     when compilation is dead. Process-wide totals would mix whatever
     suite (smoke or full) preceded, making the rate incomparable to a
     baseline recorded by the other one. Recorded as a gauge so the gate
     can hold it against the committed baseline. *)
  let hit = Telemetry.Metrics.value compiled_hit - hit0 in
  let miss = Telemetry.Metrics.value compiled_miss - miss0 in
  if hit + miss > 0 then begin
    let rate = float_of_int miss /. float_of_int (hit + miss) in
    Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.compiled_miss_rate") rate;
    Format.printf "compiled-rule evaluations: %d compiled, %d fallback (miss rate %.4f)@."
      hit miss rate
  end

(* --- serve-throughput: the streaming service under sustained load ---

   Replays a synthetic AIS day — thousands of vessels reporting
   stop-start/stop-end transitions — through a live [Runtime.Service]
   in arrival order: ingest a chunk, tick to the watermark, repeat, with
   provenance recording on throughout (as a deployment that wants
   explainable alerts would run it). Reports sustained throughput
   (events/sec) and ingest→emit latency percentiles from the
   [service.ingest_emit_us] histogram — recorded in microseconds, the
   natural unit for chunk-scale latencies — as trajectory rows
   (lower-is-better, like every other row) plus gate gauges. The full
   sweep replays ~2M events over 2000 vessels; the smoke variant is
   CI-sized, under its own row names so the drift gate never compares
   across sizes. *)

let serve_ed =
  [
    Rtec.Parser.parse_definition ~name:"ais"
      "initiatedAt(stopped(V) = true, T) :- happensAt(stop_start(V), T).\n\
       terminatedAt(stopped(V) = true, T) :- happensAt(stop_end(V), T).";
  ]

let ais_events ~vessels ~hours ~per_hour =
  let vessel = Array.init vessels (fun v -> Rtec.Term.Atom (Printf.sprintf "v%d" v)) in
  let period = 3600 / per_hour in
  let n = vessels * hours * per_hour in
  let events =
    Array.init n (fun i ->
        let v = i mod vessels in
        let slot = i / vessels in
        let t = (slot * period) + (((v * 7919) + (slot * 104729)) mod period) in
        let name = if (slot + v) land 1 = 0 then "stop_start" else "stop_end" in
        { Rtec.Stream.time = t; term = Rtec.Term.app name [ vessel.(v) ] })
  in
  Array.sort (fun (a : Rtec.Stream.event) b -> compare a.time b.time) events;
  events

let stage_names =
  [
    "service.stage.decode_us";
    "service.stage.route_us";
    "service.stage.evaluate_us";
    "service.stage.emit_us";
  ]

(* Same registry entries the CLI records into: handles share state by
   name. Route/evaluate are recorded inside [Runtime.Service]; the bench
   replay records the I/O stages itself. *)
let h_stage_decode = Telemetry.Metrics.histogram "service.stage.decode_us"
let h_stage_emit = Telemetry.Metrics.histogram "service.stage.emit_us"

let hist_stats snap name =
  match List.assoc_opt name snap.Telemetry.Metrics.histograms with
  | Some (s : Telemetry.Metrics.summary) -> (s.sum, s.count)
  | None -> (0., 0)

let sample_serve ~smoke ~jobs =
  let label = if smoke then "ais-smoke" else "ais-full" in
  (* The smoke corpus is sized so one replay runs a couple hundred ms:
     the flight-overhead gate below compares paired replays, and on
     shorter laps ambient scheduler/GC noise (several percent at 50ms)
     drowns the effect the gate is trying to bound. *)
  let vessels, hours, per_hour, chunk =
    if smoke then (400, 12, 8, 2_000) else (2000, 24, 42, 50_000)
  in
  let events = ais_events ~vessels ~hours ~per_hour in
  let total = Array.length events in
  Format.printf "==============================================================@.";
  Format.printf "Serve throughput (%s: %d events, %d vessels, provenance on)@." label total
    vessels;
  Format.printf "==============================================================@.";
  (* Pre-print the corpus into protocol-line chunks: each replay then
     starts from bytes, so the decode stage sits inside the measured
     loop exactly where serve's reader threads put it. *)
  let chunks =
    let rec go i acc =
      if i >= total then List.rev acc
      else begin
        let n = min chunk (total - i) in
        let batch = Array.to_list (Array.sub events i n) in
        go (i + n) (Rtec.Io.stream_to_string (Rtec.Stream.make batch) :: acc)
      end
    in
    go 0 []
  in
  let h_latency = Telemetry.Metrics.histogram "service.ingest_emit_us" in
  let fail e = failwith ("serve-throughput: " ^ e) in
  (* One full replay through a fresh service: decode + ingest + tick per
     chunk, then drain + final emission — every stage observation lands
     inside an [ingest_emit_us] bracket, so the four stage histograms
     partition the end-to-end latency and the coverage gate below can
     hold the attribution honest. *)
  let replay () =
    let svc =
      Runtime.Service.create
        ~config:(Runtime.Service.config ~window:3600 ~step:3600 ~jobs ~horizon:1800 ())
        ~event_description:serve_ed ~knowledge:Rtec.Knowledge.empty ()
    in
    let codec = Rtec.Io.Codec.create () in
    Rtec.Derivation.reset ();
    Rtec.Derivation.enable ();
    let t_start = Telemetry.Clock.now_ns () in
    let stats =
      Fun.protect
        ~finally:(fun () ->
          Rtec.Derivation.disable ();
          Rtec.Derivation.reset ())
        (fun () ->
          List.iter
            (fun source ->
              let t0 = Telemetry.Clock.now_ns () in
              let items =
                Telemetry.Metrics.time_us h_stage_decode (fun () ->
                    Rtec.Io.Codec.items_of_string codec source)
              in
              Runtime.Service.ingest svc items;
              (match
                 Runtime.Service.tick svc
                   ~now:(Option.value ~default:0 (Runtime.Service.watermark svc))
               with
              | Ok _ -> ()
              | Error e -> fail e);
              Telemetry.Metrics.observe h_latency
                (Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) /. 1e3))
            chunks;
          let t0 = Telemetry.Clock.now_ns () in
          match Runtime.Service.drain svc with
          | Error e -> fail e
          | Ok (r : Runtime.Service.result) ->
            let buf = Buffer.create 65536 in
            let fmt = Format.formatter_of_buffer buf in
            Telemetry.Metrics.time_us h_stage_emit (fun () ->
                List.iter
                  (fun ((f, v), spans) ->
                    Format.fprintf fmt "holdsFor(%a = %a, %a).@." Rtec.Term.pp f
                      Rtec.Term.pp v Rtec.Interval.pp spans)
                  (Lazy.force r.intervals);
                Format.pp_print_flush fmt ());
            Telemetry.Metrics.observe h_latency
              (Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) /. 1e3);
            r.stats)
    in
    (Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t_start), stats)
  in
  (* Flight-recorder pricing: alternate recorder-on and recorder-off
     replays and keep the per-variant minimum — interleaving shares
     machine drift across the variants and min-of-passes discards the
     cold first lap. Each timed replay starts from a forced major
     collection, and the within-lap order flips every lap: a replay
     leaves GC debt behind, and with a fixed on-then-off order that
     debt lands on the same variant every lap, skewing the ratio the
     gate holds (< 1.05). The full sweep runs one lap per variant just
     to record the rows. *)
  let passes = if smoke then 7 else 1 in
  let snap0 = Telemetry.Metrics.snapshot () in
  let best_on = ref infinity and best_off = ref infinity in
  let ratios = ref [] in
  let last_stats = ref None in
  let flight_records = ref 0 in
  let timed_on () =
    Gc.full_major ();
    Telemetry.Flight.enable ();
    let recs0 = Telemetry.Flight.total () in
    let on_ns, stats = replay () in
    flight_records := Telemetry.Flight.total () - recs0;
    if on_ns < !best_on then best_on := on_ns;
    last_stats := Some stats;
    on_ns
  in
  let timed_off () =
    Gc.full_major ();
    Telemetry.Flight.disable ();
    let off_ns, _ = Fun.protect ~finally:Telemetry.Flight.enable replay in
    if off_ns < !best_off then best_off := off_ns;
    off_ns
  in
  for pass = 1 to passes do
    let on_ns, off_ns =
      if pass land 1 = 1 then begin
        let on_ns = timed_on () in
        (on_ns, timed_off ())
      end
      else begin
        let off_ns = timed_off () in
        (timed_on (), off_ns)
      end
    in
    if off_ns > 0. then ratios := (on_ns /. off_ns) :: !ratios
  done;
  let stats = Option.get !last_stats in
  let elapsed_ns = !best_on in
  let eps = float_of_int total /. (elapsed_ns /. 1e9) in
  (* Gate estimator, two views combined. (a) Wall-clock: median of
     per-lap on/off ratios — the two replays of a lap are adjacent in
     time and share machine conditions, and the median ignores a single
     anomalous lap. (b) Priced: the cost of one [Flight.record] call
     (tight-loop minimum) times the records one replay actually writes,
     over the replay time — deterministic, immune to ambient noise.
     The gate holds the smaller of the two: on this box the wall-clock
     ratio carries several percent of scheduler/GC noise in either
     direction, but any real regression — an expensive record, or a
     site demoted from per-burst to per-event — inflates the priced
     view, which noise cannot excuse. *)
  let wall_ratio =
    match List.sort compare !ratios with
    | [] -> 1.
    | rs -> List.nth rs (List.length rs / 2)
  in
  let flight_ns_per_record =
    let price () =
      let reps = 100_000 in
      let t0 = Telemetry.Clock.now_ns () in
      for _ = 1 to reps do
        Telemetry.Flight.record Telemetry.Flight.Tick ~a:1 ~b:2 ~c:3 ()
      done;
      Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) /. float_of_int reps
    in
    let best = ref (price ()) in
    for _ = 1 to 4 do
      let c = price () in
      if c < !best then best := c
    done;
    Telemetry.Flight.reset ();
    !best
  in
  let priced_ratio =
    if elapsed_ns > 0. then
      1. +. (float_of_int !flight_records *. flight_ns_per_record /. elapsed_ns)
    else 1.
  in
  let flight_overhead = Float.min wall_ratio priced_ratio in
  let snap = Telemetry.Metrics.snapshot () in
  let p50, p90, p99 =
    match List.assoc_opt "service.ingest_emit_us" snap.Telemetry.Metrics.histograms with
    | Some (s : Telemetry.Metrics.summary) -> (s.p50, s.p90, s.p99)
    | None -> (0., 0., 0.)
  in
  (* Stage sums as deltas over this sample only: the evaluate/route
     histograms also collect from every batch [Runtime.run] elsewhere in
     the suite, and those observations have no enclosing bracket. *)
  let stage_means =
    List.map
      (fun name ->
        let sum1, count1 = hist_stats snap name and sum0, count0 = hist_stats snap0 name in
        (name, sum1 -. sum0, count1 - count0))
      stage_names
  in
  let stage_sum = List.fold_left (fun acc (_, sum, _) -> acc +. sum) 0. stage_means in
  let total_us =
    let sum1, _ = hist_stats snap "service.ingest_emit_us"
    and sum0, _ = hist_stats snap0 "service.ingest_emit_us" in
    sum1 -. sum0
  in
  let stage_cover = if total_us > 0. then stage_sum /. total_us else 0. in
  Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.serve_events_per_sec") eps;
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge "bench.gate.serve_appends")
    (float_of_int stats.Runtime.Service.appends);
  Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.flight_overhead") flight_overhead;
  Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.stage_cover") stage_cover;
  Format.printf "%d events in %.2f s: %.0f events/sec, %d appends, %d late, %d revisions@."
    total (elapsed_ns /. 1e9) eps stats.Runtime.Service.appends
    stats.Runtime.Service.late_events stats.Runtime.Service.revisions;
  Format.printf "ingest->emit latency per chunk-tick: p50 %.0f  p90 %.0f  p99 %.0f us@." p50
    p90 p99;
  List.iter
    (fun (name, sum, count) ->
      Format.printf "  %-28s %8.0f us total over %d brackets@." name sum count)
    stage_means;
  Format.printf "stage coverage %.2f of ingest->emit, flight recorder x%.3f@." stage_cover
    flight_overhead;
  [
    ( Printf.sprintf "adg/serve-throughput/%s-ingest-ns-per-event" label,
      Some (elapsed_ns /. float_of_int total) );
    ( Printf.sprintf "adg/serve-throughput/%s-flight-off-ns-per-event" label,
      Some (!best_off /. float_of_int total) );
    (Printf.sprintf "adg/serve-throughput/%s-ingest-emit-p50-us" label, Some p50);
    (Printf.sprintf "adg/serve-throughput/%s-ingest-emit-p90-us" label, Some p90);
    (Printf.sprintf "adg/serve-throughput/%s-ingest-emit-p99-us" label, Some p99);
  ]
  @ List.map
      (fun (name, sum, count) ->
        (* "service.stage.decode_us" -> "decode" *)
        let stage =
          match String.split_on_char '.' name with
          | [ _; _; leaf ] -> (
            match String.index_opt leaf '_' with
            | Some i -> String.sub leaf 0 i
            | None -> leaf)
          | _ -> name
        in
        ( Printf.sprintf "adg/serve-throughput/%s-stage-%s-mean-us" label stage,
          if count > 0 then Some (sum /. float_of_int count) else None ))
      stage_means

(* --- ingest-codec: the fast-path line decoder vs the general parser ---

   Decodes the same printed AIS chunk twice: once through the
   [Io.Codec] byte scanner (the corpus stays inside the codec's strict
   subset) and once with a quoted-atom sentinel *prepended*, which
   kicks the whole chunk to the general lexer/parser pipeline on its
   first line — so the fallback row prices the parser alone, not a
   wasted fast scan plus the parser. A matching unquoted sentinel keeps
   the fast corpus the same size. The ratio lands in
   [bench.gate.codec_speedup]: the gate holds the fast path to a real
   multiple of the parser, so a "fast path" that decays to fallback
   cost fails CI. *)
let sample_codec () =
  let events = Array.to_list (ais_events ~vessels:200 ~hours:3 ~per_hour:8) in
  let base = Rtec.Io.stream_to_string (Rtec.Stream.make events) in
  let n_lines = List.length events + 1 in
  let fast_corpus = "happensAt(sentinel(probe), 0).\n" ^ base in
  let fallback_corpus = "happensAt('sentinel'(probe), 0).\n" ^ base in
  let per_line f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Telemetry.Clock.now_ns () in
      f ();
      let dt = Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) in
      if dt < !best then best := dt
    done;
    !best /. float_of_int n_lines
  in
  let codec = Rtec.Io.Codec.create () in
  let fast =
    per_line (fun () -> ignore (Rtec.Io.Codec.items_of_string codec fast_corpus))
  in
  let fallback =
    per_line (fun () -> ignore (Rtec.Io.Codec.items_of_string codec fallback_corpus))
  in
  let speedup = if fast > 0. then fallback /. fast else 0. in
  Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.codec_speedup") speedup;
  Format.printf "==============================================================@.";
  Format.printf "Ingest line codec (%d lines, min of 5 passes)@." n_lines;
  Format.printf "==============================================================@.";
  Format.printf "fast %.0f ns/line, parser fallback %.0f ns/line (x%.2f)@." fast fallback
    speedup;
  [
    ("adg/ingest-codec/line-fast-ns", Some fast);
    ("adg/ingest-codec/line-fallback-ns", Some fallback);
  ]

(* Provenance gate inputs. Two gauges: (a) the recorder-on/off timing
   ratio straight from the bechamel rows just measured — the headline
   number the compact integer records exist to hold down (the PR 5
   string-building recorder sat at 6.2x); and (b) the compiled-cache hit
   delta over a single recorder-on fleet run — nonzero exactly when the
   compiled closure chains stayed active while recording, i.e. the
   recorder no longer forces the interpreted fallback. Both are recorded
   as gauges so {!check_gate} can hold them, and so the trajectory file
   carries them next to the timings. *)
let sample_provenance rows =
  let est name =
    match List.assoc_opt name rows with Some (Some e) -> Some e | _ -> None
  in
  (match
     ( est "adg/provenance-overhead/recorder-on",
       est "adg/provenance-overhead/recorder-off" )
   with
  | Some on, Some off when off > 0. ->
    let ratio = on /. off in
    Telemetry.Metrics.set (Telemetry.Metrics.gauge "bench.gate.provenance_overhead") ratio;
    Format.printf "provenance recorder overhead: %.0f -> %.0f ns/run (x%.2f)@." off on ratio
  | _ -> ());
  let stream, knowledge = Fleet.generate () in
  let ed = Domain.event_description Fleet.domain in
  let hits = Telemetry.Metrics.counter "engine.compiled.hit" in
  let h0 = Telemetry.Metrics.value hits in
  Rtec.Derivation.reset ();
  Rtec.Derivation.enable ();
  Fun.protect
    ~finally:(fun () ->
      Rtec.Derivation.disable ();
      Rtec.Derivation.reset ())
    (fun () ->
      match
        Runtime.run
          ~config:(Runtime.config ~window:3600 ~step:1800 ())
          ~event_description:ed ~knowledge ~stream ()
      with
      | Ok _ -> ()
      | Error e -> failwith e);
  let dh = Telemetry.Metrics.value hits - h0 in
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge "bench.gate.provenance_compiled_hits")
    (float_of_int dh);
  Format.printf "recorder-on fleet run: %d compiled-chain hits@." dh

(* Machine-readable trajectory point: benchmark name -> ns/run estimate
   (null when the OLS fit failed), plus a metrics snapshot when metric
   collection was on — the counters explain the timings (cache hits,
   delta runs, assignment iterations). *)
let results_json rows =
  let benchmarks =
    List.map
      (fun (name, est) ->
        (name, match est with Some e -> Telemetry.Json.Num e | None -> Telemetry.Json.Null))
      rows
  in
  let metrics =
    if Telemetry.Metrics.is_enabled () then
      Telemetry.Metrics.snapshot_to_json (Telemetry.Metrics.snapshot ())
    else Telemetry.Json.Null
  in
  Telemetry.Json.Obj
    [
      ("schema", Telemetry.Json.Str "adg-bench/2");
      ("benchmarks", Telemetry.Json.Obj benchmarks);
      ("metrics", metrics);
    ]

(* With [merge], rows and metrics the current invocation did not measure
   are preserved from the existing file, and rows measured by *both* keep
   the minimum: the committed baseline is refreshed in passes — the full
   sweep records the trajectory rows and the counters, then `--smoke
   --merge` passes re-measure the rows the CI drift gate compares under
   the *same conditions CI runs them* (sub-microsecond kernels read
   15-20% slower when measured in-process with the heavy fig2c
   workloads, which would poison the gate's drift normalisation).
   Minimum across passes because each process carries its own few-percent
   placement noise on the microsecond kernels that min-of---repeat
   *within* a process cannot cancel — repeated merge passes converge the
   baseline on the true cost, exactly what a small-tolerance gate needs.
   After a code change that legitimately slows a kernel, start over from
   the plain-`--json` full sweep (it rewrites the file). *)
let write_json ?(merge = false) file rows =
  let doc = results_json rows in
  let doc =
    if not (merge && Sys.file_exists file) then doc
    else begin
      let read_file path =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Telemetry.Json.of_string (read_file file) with
      | Error e ->
        Printf.eprintf "cannot merge into %s: %s\n" file e;
        exit 2
      | Ok old ->
        let old_benchmarks =
          match Telemetry.Json.(Option.bind (member "benchmarks" old) obj) with
          | Some fields -> fields
          | None -> []
        in
        let new_benchmarks =
          match Telemetry.Json.(Option.bind (member "benchmarks" doc) obj) with
          | Some fields -> fields
          | None -> []
        in
        let kept =
          List.filter
            (fun (name, _) -> not (List.mem_assoc name new_benchmarks))
            old_benchmarks
        in
        let new_benchmarks =
          List.map
            (fun (name, v) ->
              match (Telemetry.Json.num v, Option.bind (List.assoc_opt name old_benchmarks) Telemetry.Json.num) with
              | Some est, Some old_est when old_est > 0. && old_est < est ->
                (name, Telemetry.Json.Num old_est)
              | _ -> (name, v))
            new_benchmarks
        in
        let metrics =
          if Telemetry.Metrics.is_enabled () then
            Telemetry.Metrics.snapshot_to_json (Telemetry.Metrics.snapshot ())
          else
            Option.value ~default:Telemetry.Json.Null (Telemetry.Json.member "metrics" old)
        in
        Telemetry.Json.Obj
          [
            ("schema", Telemetry.Json.Str "adg-bench/2");
            ( "benchmarks",
              Telemetry.Json.Obj
                (List.sort
                   (fun (a, _) (b, _) -> String.compare a b)
                   (new_benchmarks @ kept)) );
            ("metrics", metrics);
          ]
    end
  in
  Telemetry.Json.write_file ~indent:true file doc;
  Format.printf "wrote %d benchmark estimates to %s%s@." (List.length rows) file
    (if merge then " (merged)" else "")

(* Baseline comparison for the CI overhead gate: with telemetry disabled,
   the instrumented binary must stay within [tolerance] of the committed
   baseline on every benchmark it shares with it. Accepts both the
   adg-bench/2 schema and the PR 1 flat {name: ns} format. *)
let check_against_baseline ~baseline ~tolerance rows =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let baseline_rows =
    match Telemetry.Json.of_string (read_file baseline) with
    | Error e ->
      Printf.eprintf "cannot parse baseline %s: %s\n" baseline e;
      exit 2
    | Ok doc ->
      let table =
        match Telemetry.Json.member "benchmarks" doc with Some b -> b | None -> doc
      in
      (match Telemetry.Json.obj table with
       | Some fields ->
         List.filter_map
           (fun (name, v) -> Option.map (fun x -> (name, x)) (Telemetry.Json.num v))
           fields
       | None ->
         Printf.eprintf "baseline %s is not a benchmark table\n" baseline;
         exit 2)
  in
  (* Individual micro-benchmarks jitter by several percent between runs,
     and the machine itself drifts (frequency scaling, noisy
     neighbours): the whole suite can read 5-10% slower than a baseline
     recorded minutes earlier with no code change at all. So the gate is
     differential: the suite contains *control* benchmarks with no
     telemetry probes (the interval kernels), and uniform
     machine drift moves controls and instrumented rows alike, so the
     ratio of the two classes' *median* ratios cancels drift and
     isolates the instrumentation overhead (medians rather than
     geometric means: a single noisy row must not swing the verdict).
     When the compared set lacks one of the classes, the gate falls
     back to the overall median ratio. Per-benchmark deltas are printed
     for attribution. *)
  (* Only the interval kernels are probe-free; every other group records
     at least one counter, so using it as a control would let a real
     probe regression cancel itself out of the gate. *)
  let is_control name = String.starts_with ~prefix:"adg/interval/" name in
  let control = ref [] and instrumented = ref [] in
  Format.printf "==============================================================@.";
  Format.printf "Overhead check vs %s (tolerance %.1f%%)@." baseline (100. *. tolerance);
  Format.printf "==============================================================@.";
  List.iter
    (fun (name, est) ->
      match (est, List.assoc_opt name baseline_rows) with
      | Some est, Some base when base > 0. && est > 0. ->
        let ratio = est /. base in
        let bucket = if is_control name then control else instrumented in
        bucket := Float.log ratio :: !bucket;
        Format.printf "%-58s %12.1f -> %12.1f ns/run  %+6.2f%% %s@." name base est
          (100. *. (ratio -. 1.))
          (if is_control name then "(control)" else "")
      | _ -> ())
    rows;
  if !control = [] && !instrumented = [] then begin
    Printf.eprintf "overhead check: no benchmark shared with the baseline\n";
    exit 2
  end;
  let median logs =
    let a = Array.of_list logs in
    Array.sort compare a;
    let n = Array.length a in
    let m = if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2. in
    Float.exp m
  in
  let pct r = 100. *. (r -. 1.) in
  let overhead =
    match (!control, !instrumented) with
    | [], logs | logs, [] ->
      let g = median logs in
      Format.printf "median ratio over %d benchmarks: %+.2f%%@." (List.length logs) (pct g);
      g
    | control, instrumented ->
      let gc = median control and gi = median instrumented in
      let g = gi /. gc in
      Format.printf
        "instrumented median %+.2f%% vs control median %+.2f%% -> drift-normalised \
         overhead %+.2f%%@."
        (pct gi) (pct gc) (pct g);
      g
  in
  if overhead > 1. +. tolerance then begin
    Printf.eprintf "overhead check: %+.2f%% exceeds %.1f%%\n" (pct overhead)
      (100. *. tolerance);
    exit 1
  end
  else Format.printf "overhead check: within tolerance@."

(* Allocation/compilation-efficacy gate: the current metrics snapshot —
   the GC gauges from {!sample_gc} and the compiled-cache miss-rate
   gauge — must stay close to the committed baseline. Two failure modes
   are held separately: (a) the hot path re-growing allocations the
   compiler removed (per-row minor words > 1.25x baseline — loose
   enough that a workload tweak doesn't trip it, tight enough that
   losing the compiled path's 10x-plus cut cannot pass), and (b) rules
   silently dropping out of compilation (fallback share of
   transition-rule evaluations > baseline + 2 points). Unlike the
   timing gate, these measures are iteration-exact, so no drift
   normalisation is needed. *)
let check_gate ~baseline =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base_gauges =
    match Telemetry.Json.of_string (read_file baseline) with
    | Error e ->
      Printf.eprintf "cannot parse gate baseline %s: %s\n" baseline e;
      exit 2
    | Ok doc -> (
      match
        Option.bind
          (Option.bind (Telemetry.Json.member "metrics" doc)
             (Telemetry.Json.member "gauges"))
          Telemetry.Json.obj
      with
      | Some fields ->
        List.filter_map
          (fun (name, v) -> Option.map (fun x -> (name, x)) (Telemetry.Json.num v))
          fields
      | None ->
        Printf.eprintf "gate baseline %s has no metrics.gauges member\n" baseline;
        exit 2)
  in
  let snap = Telemetry.Metrics.snapshot () in
  Format.printf "==============================================================@.";
  Format.printf "Bench gate vs %s (allocations, compiled-cache)@." baseline;
  Format.printf "==============================================================@.";
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (name, current) ->
      if String.starts_with ~prefix:"bench.gc.minor_words/" name then
        match List.assoc_opt name base_gauges with
        | Some base when base > 0. ->
          incr compared;
          let ratio = current /. base in
          let ok = ratio <= 1.25 in
          if not ok then incr failures;
          Format.printf "%-52s %14.0f -> %14.0f  x%.2f %s@." name base current ratio
            (if ok then "" else "FAIL (> x1.25)")
        | _ -> Format.printf "%-52s %31.0f  (no baseline, skipped)@." name current)
    snap.Telemetry.Metrics.gauges;
  (match
     ( List.assoc_opt "bench.gate.compiled_miss_rate" snap.Telemetry.Metrics.gauges,
       List.assoc_opt "bench.gate.compiled_miss_rate" base_gauges )
   with
   | Some current, Some base ->
     incr compared;
     let ok = current <= base +. 0.02 in
     if not ok then incr failures;
     Format.printf "%-52s %14.4f -> %14.4f       %s@." "bench.gate.compiled_miss_rate" base
       current
       (if ok then "" else "FAIL (> baseline + 0.02)")
   | Some current, None ->
     Format.printf "%-52s %31.4f  (no baseline, skipped)@." "bench.gate.compiled_miss_rate"
       current
   | None, _ -> ());
  (* Property gates — absolute bounds, not baseline-relative: proof
     capture must stay under 1.5x the recorder-off run (the whole point
     of the compact integer records), and the compiled engine must have
     stayed active while recording (a zero hit delta means the recorder
     forced the interpreted fallback again). *)
  (match List.assoc_opt "bench.gate.provenance_overhead" snap.Telemetry.Metrics.gauges with
  | Some ratio ->
    incr compared;
    let ok = ratio < 1.5 in
    if not ok then incr failures;
    Format.printf "%-52s %14s -> %14.2f       %s@." "bench.gate.provenance_overhead"
      "< x1.50" ratio
      (if ok then "" else "FAIL (>= x1.5)")
  | None -> ());
  (match
     List.assoc_opt "bench.gate.provenance_compiled_hits" snap.Telemetry.Metrics.gauges
   with
  | Some hits ->
    incr compared;
    let ok = hits > 0. in
    if not ok then incr failures;
    Format.printf "%-52s %14s -> %14.0f       %s@." "bench.gate.provenance_compiled_hits"
      "> 0" hits
      (if ok then "" else "FAIL (recorder forced the interpreter)")
  | None -> ());
  (* The line codec must stay a real multiple of the general parser on
     in-subset input — the whole point of the hand-rolled scanner. *)
  (match List.assoc_opt "bench.gate.codec_speedup" snap.Telemetry.Metrics.gauges with
  | Some speedup ->
    incr compared;
    let ok = speedup >= 1.5 in
    if not ok then incr failures;
    Format.printf "%-52s %14s -> %14.2f       %s@." "bench.gate.codec_speedup" ">= x1.50"
      speedup
      (if ok then "" else "FAIL (fast path no faster than the parser)")
  | None -> ());
  (* Stage attribution must actually partition the end-to-end bracket:
     the four stage sums (decode/route/evaluate/emit) within 1.3x of
     [service.ingest_emit_us] in either direction. Below means brackets
     went missing (a stage recorded outside the end-to-end window, or
     not at all); above means double counting. *)
  (match List.assoc_opt "bench.gate.stage_cover" snap.Telemetry.Metrics.gauges with
  | Some cover ->
    incr compared;
    let ok = cover >= 1. /. 1.3 && cover <= 1.3 in
    if not ok then incr failures;
    Format.printf "%-52s %14s -> %14.2f       %s@." "bench.gate.stage_cover"
      "0.77..1.30" cover
      (if ok then "" else "FAIL (stage sums do not cover ingest->emit)")
  | None -> ());
  (* The always-on flight recorder must stay invisible on the serve
     path: recorder-on vs recorder-off replay within 5%. *)
  (match List.assoc_opt "bench.gate.flight_overhead" snap.Telemetry.Metrics.gauges with
  | Some ratio ->
    incr compared;
    let ok = ratio < 1.05 in
    if not ok then incr failures;
    Format.printf "%-52s %14s -> %14.3f       %s@." "bench.gate.flight_overhead"
      "< x1.05" ratio
      (if ok then "" else "FAIL (flight recorder costs >= 5%)")
  | None -> ());
  (* The serve-throughput pass must have run and actually streamed: a
     missing row means the service path silently dropped out of the
     bench; zero appends means ingestion stopped exercising
     [Stream.append] (the counter this PR brought back to life). *)
  List.iter
    (fun (gauge, what) ->
      incr compared;
      match List.assoc_opt gauge snap.Telemetry.Metrics.gauges with
      | Some v ->
        let ok = v > 0. in
        if not ok then incr failures;
        Format.printf "%-52s %14s -> %14.0f       %s@." gauge "> 0" v
          (if ok then "" else Printf.sprintf "FAIL (%s)" what)
      | None ->
        incr failures;
        Format.printf "%-52s %31s  FAIL (%s)@." gauge "MISSING" what)
    [
      ("bench.gate.serve_events_per_sec", "service streamed nothing");
      ("bench.gate.serve_appends", "ingestion bypassed Stream.append");
    ];
  if !compared = 0 then begin
    Printf.eprintf "bench gate: no gauge shared with the baseline\n";
    exit 2
  end;
  if !failures > 0 then begin
    Printf.eprintf "bench gate: %d gauge(s) regressed\n" !failures;
    exit 1
  end
  else Format.printf "bench gate: within bounds@."

let usage =
  "usage: main.exe [--smoke] [--jobs N] [--repeat N] [--json FILE] [--merge]\n\
  \       [--trace FILE] [--metrics FILE] [--check BASELINE] [--tolerance FRACTION]\n\
  \       [--gate BASELINE]\n"

let () =
  let json_file = ref None and smoke = ref false and merge = ref false in
  let trace_file = ref None and metrics_file = ref None in
  let check_file = ref None and tolerance = ref 0.02 and repeat = ref 1 in
  let gate_file = ref None in
  let jobs = ref 2 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse rest
    | "--metrics" :: file :: rest ->
      metrics_file := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--gate" :: file :: rest ->
      gate_file := Some file;
      parse rest
    | "--tolerance" :: x :: rest -> (
      match float_of_string_opt x with
      | Some t when t >= 0. ->
        tolerance := t;
        parse rest
      | _ ->
        Printf.eprintf "%s--tolerance expects a non-negative number, got %s\n" usage x;
        exit 2)
    | "--repeat" :: x :: rest -> (
      match int_of_string_opt x with
      | Some n when n >= 1 ->
        repeat := n;
        parse rest
      | _ ->
        Printf.eprintf "%s--repeat expects a positive integer, got %s\n" usage x;
        exit 2)
    | "--jobs" :: x :: rest -> (
      match int_of_string_opt x with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        Printf.eprintf "%s--jobs expects a positive integer, got %s\n" usage x;
        exit 2)
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--merge" :: rest ->
      merge := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf "%sunknown argument: %s\n" usage arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail on unwritable output targets now, not after the full sweep.
     No Open_trunc: `--merge` needs the existing --json content intact. *)
  List.iter
    (fun (flag, file) ->
      Option.iter
        (fun file ->
          match open_out_gen [ Open_wronly; Open_creat ] 0o644 file with
          | oc -> close_out oc
          | exception Sys_error msg ->
            Printf.eprintf "cannot write %s file: %s\n" flag msg;
            exit 2)
        file)
    [ ("--json", !json_file); ("--trace", !trace_file); ("--metrics", !metrics_file) ];
  (* An unreadable baseline should also fail before the sweep. *)
  List.iter
    (fun (flag, file) ->
      Option.iter
        (fun file ->
          if not (Sys.file_exists file) then begin
            Printf.eprintf "cannot read %s baseline: %s\n" flag file;
            exit 2
          end)
        file)
    [ ("--check", !check_file); ("--gate", !gate_file) ];
  if Option.is_some !trace_file then Telemetry.Trace.enable ();
  (* The gate reads GC gauges and compiled-cache counters, so it implies
     metric collection even without a --metrics output file. *)
  if Option.is_some !metrics_file || Option.is_some !gate_file then
    Telemetry.Metrics.enable ();
  if not !smoke then print_figures ();
  let rows = benchmark_min ~smoke:!smoke ~repeat:!repeat ~jobs:!jobs in
  (* Before the JSON writers run, so the gauges land in the snapshot the
     trajectory file and the --metrics artifact embed. The serve pass is
     single-shot, so its rows only join metric-collecting invocations
     (the full baseline sweep and the --gate smoke); the min-of-repeat
     timing --check never sees them and its drift medians stay clean. *)
  let rows =
    if Telemetry.Metrics.is_enabled () then begin
      sample_gc ();
      sample_provenance rows;
      rows @ sample_serve ~smoke:!smoke ~jobs:!jobs @ sample_codec ()
    end
    else rows
  in
  Option.iter (fun file -> write_json ~merge:!merge file rows) !json_file;
  Option.iter
    (fun file ->
      Telemetry.Metrics.write file;
      Format.printf "wrote metrics snapshot to %s@." file)
    !metrics_file;
  Option.iter
    (fun file ->
      Telemetry.Trace.write_chrome file;
      Format.printf "wrote Chrome trace (%d spans) to %s@."
        (List.length (Telemetry.Trace.infos ()))
        file)
    !trace_file;
  Option.iter
    (fun baseline -> check_against_baseline ~baseline ~tolerance:!tolerance rows)
    !check_file;
  Option.iter (fun baseline -> check_gate ~baseline) !gate_file
