(* Benchmark harness.

   Running this executable (a) regenerates every figure of the paper's
   evaluation (Figures 2a, 2b, 2c) on the synthetic substrate, and (b)
   runs Bechamel micro-benchmarks over the performance-critical pieces:
   the interval algebra, the Kuhn-Munkres assignment kernel, the
   similarity metric, the prompting pipeline and the recognition engine
   with a window-size sweep (RTEC's headline optimisation). *)

open Bechamel
open Toolkit

(* --- figure reproduction --- *)

let print_figures () =
  Format.printf "==============================================================@.";
  Format.printf "Figure reproduction (see EXPERIMENTS.md for the comparison)@.";
  Format.printf "==============================================================@.";
  Evaluation.Report.print_all Format.std_formatter ();
  Format.printf "@."

(* --- benchmark fixtures --- *)

let spans_a = Rtec.Interval.of_list (List.init 200 (fun i -> (i * 10, (i * 10) + 6)))
let spans_b = Rtec.Interval.of_list (List.init 200 (fun i -> ((i * 10) + 3, (i * 10) + 8)))

let cost_matrix n =
  Array.init n (fun i ->
      Array.init n (fun j -> float_of_int (((i * 31) + (j * 17)) mod 100) /. 100.))

let matrix_16 = cost_matrix 16
let matrix_64 = cost_matrix 64
let gold_rules = Rtec.Ast.all_rules Maritime.Gold.event_description

let mutated_rules =
  let mutate (d : Rtec.Ast.definition) =
    Adg.Error_model.apply_all
      [ Adg.Error_model.Rename ("entersArea", "inArea"); Adg.Error_model.Add_redundant ]
      d
  in
  Rtec.Ast.all_rules (List.map mutate Maritime.Gold.event_description)

let trawling_rules = (Maritime.Gold.definition "trawling").rules

let trawling_mutated =
  (Adg.Error_model.apply Adg.Error_model.Add_redundant (Maritime.Gold.definition "trawling"))
    .rules

let small_dataset =
  Maritime.Dataset.generate
    ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 1 }
    ()

(* More background vessels than the fig2c fixture so the entity
   partition yields four-plus balanced shards for the jobs-scaling rows.
   Lazy: the smoke suite never touches it. *)
let multicore_dataset =
  lazy
    (Maritime.Dataset.generate
       ~config:{ Maritime.Dataset.seed = 99; replicas = 1; nominal = 3 }
       ())

let recognise ~window ~step () =
  match
    Runtime.run
      ~config:(Runtime.config ~window ~step ())
      ~event_description:Maritime.Gold.event_description
      ~knowledge:small_dataset.knowledge ~stream:small_dataset.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let recognise_multicore ~jobs () =
  let d = Lazy.force multicore_dataset in
  match
    Runtime.run
      ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs ())
      ~event_description:Maritime.Gold.event_description ~knowledge:d.knowledge
      ~stream:d.stream ()
  with
  | Ok (result, _) -> ignore result
  | Error e -> failwith e

let o1_profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot

(* A full generated session for the similarity-sweep rows. Lazy: the
   sweep group forces it once; the smoke suite pays for it only when the
   group is selected. *)
let o1_session = lazy (Adg.Session.run (Adg.Profiles.backend o1_profile))

let tests =
  [
    Test.make_grouped ~name:"interval"
      [
        Test.make ~name:"union_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.union_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"intersect_all-3x200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.intersect_all [ spans_a; spans_b; spans_a ])));
        Test.make ~name:"relative_complement-200"
          (Staged.stage (fun () ->
               ignore (Rtec.Interval.relative_complement_all spans_a [ spans_b ])));
        Test.make ~name:"from_points-200"
          (Staged.stage (fun () ->
               ignore
                 (Rtec.Interval.from_points
                    ~starts:(List.init 200 (fun i -> i * 10))
                    ~stops:(List.init 200 (fun i -> (i * 10) + 5)))));
      ];
    Test.make_grouped ~name:"assignment"
      [
        Test.make ~name:"kuhn-munkres-16"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_16)));
        Test.make ~name:"kuhn-munkres-64"
          (Staged.stage (fun () -> ignore (Assignment.Kuhn_munkres.solve matrix_64)));
      ];
    Test.make_grouped ~name:"similarity-fig2a-2b-kernel"
      [
        Test.make ~name:"rule-distance"
          (Staged.stage (fun () ->
               ignore
                 (Similarity.Distance.rule (List.hd trawling_rules)
                    (List.hd trawling_mutated))));
        Test.make ~name:"definition-similarity"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.similarity trawling_mutated trawling_rules)));
        Test.make ~name:"event-description-distance"
          (Staged.stage (fun () ->
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
        (* Same workload with the rule-pair memo emptied first: the
           honest uncached kernel number. The warm row above amortises
           the memo across iterations, which is exactly how the fig2a
           sweep uses it. *)
        Test.make ~name:"event-description-distance-cold"
          (Staged.stage (fun () ->
               Similarity.Distance.clear_cache ();
               ignore (Similarity.Distance.event_description mutated_rules gold_rules)));
      ];
    (* The fig2a inner loop at table granularity: one generated session
       graded against every gold entry, sequentially and fanned over two
       worker domains. Values are bit-identical across rows; the delta is
       pure domain fan-out cost or gain of the host. *)
    Test.make_grouped ~name:"similarity-sweep"
      [
        Test.make ~name:"table-jobs-1"
          (Staged.stage (fun () ->
               ignore
                 (Evaluation.Experiments.similarity_table ~jobs:1 (Lazy.force o1_session))));
        Test.make ~name:"table-jobs-2"
          (Staged.stage (fun () ->
               ignore
                 (Evaluation.Experiments.similarity_table ~jobs:2 (Lazy.force o1_session))));
      ];
    Test.make_grouped ~name:"generation-fig2a-kernel"
      [
        Test.make ~name:"o1-session-one-activity"
          (Staged.stage (fun () ->
               let backend = Adg.Profiles.backend o1_profile in
               ignore (Adg.Session.run ~activities:[ "trawling" ] backend)));
      ];
    Test.make_grouped ~name:"recognition-fig2c-kernel"
      [
        Test.make ~name:"window-1h-step-30min" (Staged.stage (recognise ~window:3600 ~step:1800));
        Test.make ~name:"window-2h-step-1h" (Staged.stage (recognise ~window:7200 ~step:3600));
        Test.make ~name:"window-4h-step-2h" (Staged.stage (recognise ~window:14400 ~step:7200));
      ];
    (* Jobs-scaling sweep over the fig2c workload: the same sliding
       window recognised sequentially and on 2 and 4 worker domains.
       Sharding conserves engine work exactly (the partition is
       work-neutral), so these rows isolate the domain fan-out cost or
       gain of the host: near-linear gains on a multicore machine,
       GC-barrier overhead on a single-core one (see EXPERIMENTS.md). *)
    Test.make_grouped ~name:"recognition-fig2c-multicore"
      [
        Test.make ~name:"window-1h-jobs-1" (Staged.stage (recognise_multicore ~jobs:1));
        Test.make ~name:"window-1h-jobs-2" (Staged.stage (recognise_multicore ~jobs:2));
        Test.make ~name:"window-1h-jobs-4" (Staged.stage (recognise_multicore ~jobs:4));
      ];
    Test.make_grouped ~name:"fleet-domain"
      [
        (let stream, knowledge = Fleet.generate () in
         let ed = Domain.event_description Fleet.domain in
         Test.make ~name:"recognition-window-1h"
           (Staged.stage (fun () ->
                match
                  Runtime.run
                    ~config:(Runtime.config ~window:3600 ~step:1800 ())
                    ~event_description:ed ~knowledge ~stream ()
                with
                | Ok _ -> ()
                | Error e -> failwith e)));
      ];
    (* Derivation-recorder overhead on the fleet sliding-window workload:
       the recorder-off row measures the gated (production-default) path —
       a single branch per probe site, held to the same 2% drift budget as
       every instrumented row — and the recorder-on row prices full
       proof-tree capture. The on-row resets the buffer around each run
       so memory stays bounded across iterations. *)
    (let stream, knowledge = Fleet.generate () in
     let ed = Domain.event_description Fleet.domain in
     let run () =
       match
         Runtime.run
           ~config:(Runtime.config ~window:3600 ~step:1800 ())
           ~event_description:ed ~knowledge ~stream ()
       with
       | Ok _ -> ()
       | Error e -> failwith e
     in
     Test.make_grouped ~name:"provenance-overhead"
       [
         Test.make ~name:"recorder-off" (Staged.stage run);
         Test.make ~name:"recorder-on"
           (Staged.stage (fun () ->
                Rtec.Derivation.reset ();
                Rtec.Derivation.enable ();
                Fun.protect
                  ~finally:(fun () ->
                    Rtec.Derivation.disable ();
                    Rtec.Derivation.reset ())
                  run));
       ]);
  ]

(* Smoke-only parallel row: recognises the (cheap) fleet workload on
   [jobs] worker domains, exercising the pool, the entity partition and
   the per-domain telemetry merge in CI. The row name embeds the jobs
   value, so the drift gate only compares it against a baseline recorded
   with the same fan-out — and skips it against the sequential full-sweep
   baseline. *)
let multicore_smoke ~jobs =
  let stream, knowledge = Fleet.generate () in
  let ed = Domain.event_description Fleet.domain in
  Test.make_grouped ~name:"multicore-smoke"
    [
      Test.make
        ~name:(Printf.sprintf "fleet-window-1h-jobs-%d" jobs)
        (Staged.stage (fun () ->
             match
               Runtime.run
                 ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs ())
                 ~event_description:ed ~knowledge ~stream ()
             with
             | Ok _ -> ()
             | Error e -> failwith e));
    ]

(* Everything but the slow fig2c recognition kernels (~150 ms/run):
   enough to verify the harness (fixtures build, bechamel runs, the
   table and JSON writers work) without the full sweep. The fleet
   recognition kernel (~2 ms/run) makes the smoke run exercise
   Runtime.run/Window/Engine and their telemetry counters (delta runs,
   cache hits); the similarity/generation kernels give the overhead gate
   enough instrumented rows for a stable median. *)
let smoke_tests ~jobs =
  List.filter
    (fun group ->
      List.mem (Test.name group)
        [
          "interval";
          "assignment";
          "fleet-domain";
          "provenance-overhead";
          "similarity-fig2a-2b-kernel";
          "similarity-sweep";
          "generation-fig2a-kernel";
        ])
    tests
  @ [ multicore_smoke ~jobs ]

let benchmark ~smoke ~jobs =
  (* Normalise heap state before measuring: the full sweep prints every
     figure first and interleaves heavy recognition workloads, and the
     expanded major heap they leave behind taxes the sub-microsecond
     kernels (different GC pacing, worse locality) — enough to skew the
     smoke-vs-full comparison the CI drift gate depends on. *)
  Gc.compact ();
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* One quota for smoke and full sweeps: the OLS estimate of a short
     benchmark depends systematically on the iteration counts the quota
     allows (longer quota -> larger batches -> less amortised fixed
     overhead in the slope), so the overhead gate is only meaningful
     when the check run and the baseline were measured identically. *)
  let quota = 0.5 in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:(Some 500) () in
  let suite = if smoke then smoke_tests ~jobs else tests in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"adg" suite) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> (name, Some est)
      | Some _ | None -> (name, None))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* Repeated measurement with a per-benchmark minimum. Scheduler
   preemption and frequency scaling only ever make a run *slower*, so
   the min over [repeat] passes estimates the true cost far more stably
   than any single pass — which is what a small-tolerance overhead gate
   needs. A systematic instrumentation cost shifts the minimum too, so
   the gate still catches it. *)
let benchmark_min ~smoke ~repeat ~jobs =
  let min_est a b =
    match (a, b) with
    | Some a, Some b -> Some (Float.min a b)
    | (Some _ as x), None | None, x -> x
  in
  let best = ref [] in
  for pass = 1 to repeat do
    if repeat > 1 then Format.printf "benchmark pass %d/%d...@." pass repeat;
    let rows = benchmark ~smoke ~jobs in
    best :=
      if !best = [] then rows
      else List.map (fun (name, est) -> (name, min_est est (List.assoc name !best))) rows
  done;
  let rows = !best in
  Format.printf "==============================================================@.";
  Format.printf "Micro-benchmarks (monotonic clock, ns/run%s)@."
    (if repeat > 1 then Printf.sprintf ", min of %d passes" repeat else "");
  Format.printf "==============================================================@.";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "%-60s %16.1f ns/run@." name est
      | None -> Format.printf "%-60s %16s@." name "n/a")
    rows;
  rows

(* Machine-readable trajectory point: benchmark name -> ns/run estimate
   (null when the OLS fit failed), plus a metrics snapshot when metric
   collection was on — the counters explain the timings (cache hits,
   delta runs, assignment iterations). *)
let results_json rows =
  let benchmarks =
    List.map
      (fun (name, est) ->
        (name, match est with Some e -> Telemetry.Json.Num e | None -> Telemetry.Json.Null))
      rows
  in
  let metrics =
    if Telemetry.Metrics.is_enabled () then
      Telemetry.Metrics.snapshot_to_json (Telemetry.Metrics.snapshot ())
    else Telemetry.Json.Null
  in
  Telemetry.Json.Obj
    [
      ("schema", Telemetry.Json.Str "adg-bench/2");
      ("benchmarks", Telemetry.Json.Obj benchmarks);
      ("metrics", metrics);
    ]

(* With [merge], rows and metrics the current invocation did not measure
   are preserved from the existing file, and rows measured by *both* keep
   the minimum: the committed baseline is refreshed in passes — the full
   sweep records the trajectory rows and the counters, then `--smoke
   --merge` passes re-measure the rows the CI drift gate compares under
   the *same conditions CI runs them* (sub-microsecond kernels read
   15-20% slower when measured in-process with the heavy fig2c
   workloads, which would poison the gate's drift normalisation).
   Minimum across passes because each process carries its own few-percent
   placement noise on the microsecond kernels that min-of---repeat
   *within* a process cannot cancel — repeated merge passes converge the
   baseline on the true cost, exactly what a small-tolerance gate needs.
   After a code change that legitimately slows a kernel, start over from
   the plain-`--json` full sweep (it rewrites the file). *)
let write_json ?(merge = false) file rows =
  let doc = results_json rows in
  let doc =
    if not (merge && Sys.file_exists file) then doc
    else begin
      let read_file path =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Telemetry.Json.of_string (read_file file) with
      | Error e ->
        Printf.eprintf "cannot merge into %s: %s\n" file e;
        exit 2
      | Ok old ->
        let old_benchmarks =
          match Telemetry.Json.(Option.bind (member "benchmarks" old) obj) with
          | Some fields -> fields
          | None -> []
        in
        let new_benchmarks =
          match Telemetry.Json.(Option.bind (member "benchmarks" doc) obj) with
          | Some fields -> fields
          | None -> []
        in
        let kept =
          List.filter
            (fun (name, _) -> not (List.mem_assoc name new_benchmarks))
            old_benchmarks
        in
        let new_benchmarks =
          List.map
            (fun (name, v) ->
              match (Telemetry.Json.num v, Option.bind (List.assoc_opt name old_benchmarks) Telemetry.Json.num) with
              | Some est, Some old_est when old_est > 0. && old_est < est ->
                (name, Telemetry.Json.Num old_est)
              | _ -> (name, v))
            new_benchmarks
        in
        let metrics =
          if Telemetry.Metrics.is_enabled () then
            Telemetry.Metrics.snapshot_to_json (Telemetry.Metrics.snapshot ())
          else
            Option.value ~default:Telemetry.Json.Null (Telemetry.Json.member "metrics" old)
        in
        Telemetry.Json.Obj
          [
            ("schema", Telemetry.Json.Str "adg-bench/2");
            ( "benchmarks",
              Telemetry.Json.Obj
                (List.sort
                   (fun (a, _) (b, _) -> String.compare a b)
                   (new_benchmarks @ kept)) );
            ("metrics", metrics);
          ]
    end
  in
  Telemetry.Json.write_file ~indent:true file doc;
  Format.printf "wrote %d benchmark estimates to %s%s@." (List.length rows) file
    (if merge then " (merged)" else "")

(* Baseline comparison for the CI overhead gate: with telemetry disabled,
   the instrumented binary must stay within [tolerance] of the committed
   baseline on every benchmark it shares with it. Accepts both the
   adg-bench/2 schema and the PR 1 flat {name: ns} format. *)
let check_against_baseline ~baseline ~tolerance rows =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let baseline_rows =
    match Telemetry.Json.of_string (read_file baseline) with
    | Error e ->
      Printf.eprintf "cannot parse baseline %s: %s\n" baseline e;
      exit 2
    | Ok doc ->
      let table =
        match Telemetry.Json.member "benchmarks" doc with Some b -> b | None -> doc
      in
      (match Telemetry.Json.obj table with
       | Some fields ->
         List.filter_map
           (fun (name, v) -> Option.map (fun x -> (name, x)) (Telemetry.Json.num v))
           fields
       | None ->
         Printf.eprintf "baseline %s is not a benchmark table\n" baseline;
         exit 2)
  in
  (* Individual micro-benchmarks jitter by several percent between runs,
     and the machine itself drifts (frequency scaling, noisy
     neighbours): the whole suite can read 5-10% slower than a baseline
     recorded minutes earlier with no code change at all. So the gate is
     differential: the suite contains *control* benchmarks with no
     telemetry probes (the interval kernels), and uniform
     machine drift moves controls and instrumented rows alike, so the
     ratio of the two classes' *median* ratios cancels drift and
     isolates the instrumentation overhead (medians rather than
     geometric means: a single noisy row must not swing the verdict).
     When the compared set lacks one of the classes, the gate falls
     back to the overall median ratio. Per-benchmark deltas are printed
     for attribution. *)
  (* Only the interval kernels are probe-free; every other group records
     at least one counter, so using it as a control would let a real
     probe regression cancel itself out of the gate. *)
  let is_control name = String.starts_with ~prefix:"adg/interval/" name in
  let control = ref [] and instrumented = ref [] in
  Format.printf "==============================================================@.";
  Format.printf "Overhead check vs %s (tolerance %.1f%%)@." baseline (100. *. tolerance);
  Format.printf "==============================================================@.";
  List.iter
    (fun (name, est) ->
      match (est, List.assoc_opt name baseline_rows) with
      | Some est, Some base when base > 0. && est > 0. ->
        let ratio = est /. base in
        let bucket = if is_control name then control else instrumented in
        bucket := Float.log ratio :: !bucket;
        Format.printf "%-58s %12.1f -> %12.1f ns/run  %+6.2f%% %s@." name base est
          (100. *. (ratio -. 1.))
          (if is_control name then "(control)" else "")
      | _ -> ())
    rows;
  if !control = [] && !instrumented = [] then begin
    Printf.eprintf "overhead check: no benchmark shared with the baseline\n";
    exit 2
  end;
  let median logs =
    let a = Array.of_list logs in
    Array.sort compare a;
    let n = Array.length a in
    let m = if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2. in
    Float.exp m
  in
  let pct r = 100. *. (r -. 1.) in
  let overhead =
    match (!control, !instrumented) with
    | [], logs | logs, [] ->
      let g = median logs in
      Format.printf "median ratio over %d benchmarks: %+.2f%%@." (List.length logs) (pct g);
      g
    | control, instrumented ->
      let gc = median control and gi = median instrumented in
      let g = gi /. gc in
      Format.printf
        "instrumented median %+.2f%% vs control median %+.2f%% -> drift-normalised \
         overhead %+.2f%%@."
        (pct gi) (pct gc) (pct g);
      g
  in
  if overhead > 1. +. tolerance then begin
    Printf.eprintf "overhead check: %+.2f%% exceeds %.1f%%\n" (pct overhead)
      (100. *. tolerance);
    exit 1
  end
  else Format.printf "overhead check: within tolerance@."

let usage =
  "usage: main.exe [--smoke] [--jobs N] [--repeat N] [--json FILE] [--merge]\n\
  \       [--trace FILE] [--metrics FILE] [--check BASELINE] [--tolerance FRACTION]\n"

let () =
  let json_file = ref None and smoke = ref false and merge = ref false in
  let trace_file = ref None and metrics_file = ref None in
  let check_file = ref None and tolerance = ref 0.02 and repeat = ref 1 in
  let jobs = ref 2 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse rest
    | "--metrics" :: file :: rest ->
      metrics_file := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--tolerance" :: x :: rest -> (
      match float_of_string_opt x with
      | Some t when t >= 0. ->
        tolerance := t;
        parse rest
      | _ ->
        Printf.eprintf "%s--tolerance expects a non-negative number, got %s\n" usage x;
        exit 2)
    | "--repeat" :: x :: rest -> (
      match int_of_string_opt x with
      | Some n when n >= 1 ->
        repeat := n;
        parse rest
      | _ ->
        Printf.eprintf "%s--repeat expects a positive integer, got %s\n" usage x;
        exit 2)
    | "--jobs" :: x :: rest -> (
      match int_of_string_opt x with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        Printf.eprintf "%s--jobs expects a positive integer, got %s\n" usage x;
        exit 2)
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--merge" :: rest ->
      merge := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf "%sunknown argument: %s\n" usage arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail on unwritable output targets now, not after the full sweep.
     No Open_trunc: `--merge` needs the existing --json content intact. *)
  List.iter
    (fun (flag, file) ->
      Option.iter
        (fun file ->
          match open_out_gen [ Open_wronly; Open_creat ] 0o644 file with
          | oc -> close_out oc
          | exception Sys_error msg ->
            Printf.eprintf "cannot write %s file: %s\n" flag msg;
            exit 2)
        file)
    [ ("--json", !json_file); ("--trace", !trace_file); ("--metrics", !metrics_file) ];
  (* An unreadable baseline should also fail before the sweep. *)
  Option.iter
    (fun file ->
      if not (Sys.file_exists file) then begin
        Printf.eprintf "cannot read --check baseline: %s\n" file;
        exit 2
      end)
    !check_file;
  if Option.is_some !trace_file then Telemetry.Trace.enable ();
  if Option.is_some !metrics_file then Telemetry.Metrics.enable ();
  if not !smoke then print_figures ();
  let rows = benchmark_min ~smoke:!smoke ~repeat:!repeat ~jobs:!jobs in
  Option.iter (fun file -> write_json ~merge:!merge file rows) !json_file;
  Option.iter
    (fun file ->
      Telemetry.Metrics.write file;
      Format.printf "wrote metrics snapshot to %s@." file)
    !metrics_file;
  Option.iter
    (fun file ->
      Telemetry.Trace.write_chrome file;
      Format.printf "wrote Chrome trace (%d spans) to %s@."
        (List.length (Telemetry.Trace.infos ()))
        file)
    !trace_file;
  Option.iter
    (fun baseline -> check_against_baseline ~baseline ~tolerance:!tolerance rows)
    !check_file
