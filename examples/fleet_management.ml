(* Vehicle fleet management — the second domain of the paper's further
   work (Section 6). Prompt R is reused verbatim; prompts F, E and T are
   rebuilt from the fleet domain knowledge. The example (i) recognises the
   fleet activities over a synthetic day of bus telemetry with the
   hand-crafted definitions, and (ii) runs the generation pipeline for two
   models against the fleet gold standard.

   Run with: dune exec examples/fleet_management.exe *)

let () =
  let domain = Fleet.domain in

  (* --- recognition with the hand-crafted fleet definitions --- *)
  let stream, knowledge = Fleet.generate () in
  Format.printf "fleet stream: %d events over %d buses@." (Rtec.Stream.size stream)
    Fleet.default_config.buses;
  let ed = Domain.event_description domain in
  assert (Rtec.Check.usable ~vocabulary:(Domain.check_vocabulary domain) ed);
  (match
     Runtime.run
       ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs:2 ())
       ~event_description:ed ~knowledge ~stream ()
   with
  | Error e -> prerr_endline ("recognition failed: " ^ e)
  | Ok (result, _) ->
    Format.printf "@.Composite fleet activities detected:@.";
    List.iter
      (fun (e : Domain.entry) ->
        let d = Domain.definition domain e.name in
        match Rtec.Ast.head_indicator (List.hd d.rules) with
        | None -> ()
        | Some indicator ->
          let instances = Rtec.Engine.find_fluent result indicator in
          let total =
            List.fold_left
              (fun acc (_, spans) ->
                acc + Rtec.Interval.duration (Rtec.Interval.clamp 0 1_000_000 spans))
              0 instances
          in
          Format.printf "  %-28s %2d instance(s), %6d s in total@." e.name
            (List.length instances) total)
      (Domain.reported domain));

  (* --- generation: prompt R reused, prompts F/E/T customised --- *)
  Format.printf "@.Prompt E for the fleet domain (first lines):@.";
  let e_prompt = Adg.Prompt.events_and_fluents ~domain () in
  List.iteri
    (fun i line -> if i < 6 then Format.printf "  %s@." line)
    (String.split_on_char '\n' e_prompt);

  Format.printf "@.Generation on the fleet domain (same error profiles):@.";
  Format.printf "  %-10s %-18s %s@." "model" "scheme" "avg similarity";
  List.iter
    (fun model ->
      let scheme = Adg.Profiles.reported_scheme model in
      let profile = Adg.Profiles.find ~model ~scheme in
      let session = Adg.Session.run ~domain (Adg.Profiles.backend ~domain profile) in
      let scores =
        List.map
          (fun (e : Domain.entry) ->
            match
              List.find_opt
                (fun (d : Adg.Session.generated_definition) -> d.activity = e.name)
                session.definitions
            with
            | Some { parsed = Ok def; _ } ->
              Similarity.Distance.similarity def.rules (Domain.definition domain e.name).rules
            | _ -> 0.)
          domain.entries
      in
      let avg = List.fold_left ( +. ) 0. scores /. float_of_int (List.length scores) in
      Format.printf "  %-10s %-18s %.3f@." model (Adg.Prompt.scheme_name scheme) avg)
    [ "o1"; "GPT-4o"; "Gemma-2" ];

  (* A corrected fleet event description remains usable. *)
  let profile = Adg.Profiles.find ~model:"o1" ~scheme:Adg.Prompt.Few_shot in
  let session = Adg.Session.run ~domain (Adg.Profiles.backend ~domain profile) in
  let corrected, report = Adg.Correction.correct ~domain session in
  Format.printf "@.o1 fleet event description: %d corrections, usable: %b@."
    (List.length report.changes)
    (Rtec.Check.usable ~vocabulary:(Domain.check_vocabulary domain) corrected)
