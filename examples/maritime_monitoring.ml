(* Maritime situational awareness over a synthetic AIS stream: the
   workload that motivates the paper's introduction. Generates a day of
   vessel traffic around two ports, preprocesses the position signals
   into input events, and runs the hand-crafted event description with a
   one-hour sliding window.

   Run with: dune exec examples/maritime_monitoring.exe *)

let hms seconds =
  Printf.sprintf "%02d:%02d:%02d" (seconds / 3600) (seconds mod 3600 / 60) (seconds mod 60)

let () =
  let dataset = Maritime.Dataset.generate () in
  Format.printf "Synthetic Brest: %d vessels, %d AIS messages -> %d input events@."
    (List.length dataset.vessels)
    (List.length dataset.messages)
    (Rtec.Stream.size dataset.stream);

  (* The gold-standard event description is a hierarchy of 21 activity
     definitions; check it before running. *)
  let ed = Maritime.Gold.event_description in
  assert (Rtec.Check.usable ~vocabulary:Maritime.Vocabulary.check_vocabulary ed);

  match
    Runtime.run
      ~config:(Runtime.config ~window:3600 ~step:1800 ~jobs:2 ())
      ~event_description:ed ~knowledge:dataset.knowledge ~stream:dataset.stream ()
  with
  | Error e -> prerr_endline ("recognition failed: " ^ e)
  | Ok (result, stats) ->
    Format.printf "windowed run: %d queries, %d window-events, %d shard(s) on %d domain(s)@.@."
      stats.queries stats.events_processed stats.shards stats.jobs;
    Format.printf "Composite maritime activities detected:@.";
    List.iter
      (fun (activity : Evaluation.Detection.activity) ->
        let instances = Evaluation.Detection.instances result activity in
        Format.printf "@.%s (%s): %d instance(s)@." activity.name activity.code
          (List.length instances);
        List.iter
          (fun ((fluent, _), spans) ->
            List.iter
              (fun (s, e) ->
                Format.printf "  %-45s %s - %s@."
                  (Rtec.Term.to_string fluent)
                  (hms s)
                  (if e = Rtec.Interval.infinity then "(open)" else hms e))
              (Rtec.Interval.to_list spans))
          instances)
      Evaluation.Detection.reported;
    (* Activities beyond the figure's eight: the paper's motivating
       examples. *)
    Format.printf "@.Other composite activities:@.";
    List.iter
      (fun (name, indicator) ->
        List.iter
          (fun ((fluent, _), spans) ->
            List.iter
              (fun (s, e) ->
                Format.printf "  %-45s %s - %s@."
                  (Rtec.Term.to_string fluent)
                  (hms s)
                  (if e = Rtec.Interval.infinity then "(open)" else hms e))
              (Rtec.Interval.to_list spans))
          (Rtec.Engine.find_fluent result indicator);
        ignore name)
      [ ("illegalFishing", ("illegalFishing", 1)); ("rendezVous", ("rendezVous", 2)) ]
