(* Online operation: a long-lived [Runtime.Service] session instead of a
   one-shot batch run. Batches of AIS messages "arrive" every half hour,
   the service ticks the sliding-window query grid forward, and
   detections print as they are recognised — per-vessel state (carried
   fluents, compiled rules) persists across windows inside the service.

   One batch is deliberately delayed in transit: because it arrives
   within the service's revision horizon, the affected vessels are
   rolled back and their overlapping windows replayed, so the final
   result still matches the in-order batch run bit for bit — checked at
   the end.

   Run with: dune exec examples/online_monitoring.exe *)

let hms seconds = Printf.sprintf "%02d:%02d" (seconds / 3600) (seconds mod 3600 / 60)

let () =
  let dataset =
    Maritime.Dataset.generate
      ~config:{ Maritime.Dataset.seed = 2025; replicas = 1; nominal = 1 }
      ()
  in
  let ed = Maritime.Gold.event_description in
  let window = 3600 and step = 1800 in
  let lo, hi = Rtec.Stream.extent dataset.stream in
  Format.printf "stream: %d events in [%d, %d]; window %ds, step %ds@.@."
    (Rtec.Stream.size dataset.stream) lo hi window step;

  (* A session that outlives any single window: late events up to one
     window old are repaired by rollback-and-replay, older ones would be
     counted and dropped. *)
  let svc =
    Runtime.Service.create
      ~config:(Runtime.Service.config ~window ~step ~horizon:window ())
      ~event_description:ed ~knowledge:dataset.knowledge ()
  in

  (* Input fluents (proximity spans etc.) are timeless context for this
     dataset: hand them over up front. *)
  Runtime.Service.ingest svc
    (List.map
       (fun (fv, spans) -> Rtec.Stream.Fluent (fv, spans))
       (Rtec.Stream.input_fluents dataset.stream));

  (* Chop the event stream into half-hour arrival batches. *)
  let slots = Hashtbl.create 64 in
  List.iter
    (fun (e : Rtec.Stream.event) ->
      let s = e.time / step in
      Hashtbl.replace slots s (e :: (try Hashtbl.find slots s with Not_found -> [])))
    (Rtec.Stream.events dataset.stream);
  let slot_ids = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) slots []) in
  let held = List.nth slot_ids (List.length slot_ids / 2) in
  let batch s = List.rev (Hashtbl.find slots s) in
  let deliver s =
    Runtime.Service.ingest svc (List.map (fun e -> Rtec.Stream.Event e) (batch s))
  in

  let seen = Hashtbl.create 64 in
  let watched = [ ("trawling", 1); ("pilotBoarding", 2); ("anchoredOrMoored", 1);
                  ("illegalFishing", 1); ("highSpeedNearCoast", 1) ] in
  let report now (r : Runtime.Service.result) =
    List.iter
      (fun indicator ->
        List.iter
          (fun ((fluent, _), _) ->
            let key = Rtec.Term.to_string fluent in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              Format.printf "[tick %s] recognised %s@." (hms now) key
            end)
          (Rtec.Engine.find_fluent (Lazy.force r.intervals) indicator))
      watched
  in

  List.iter
    (fun s ->
      if s = held then
        Format.printf "[%s] batch of %d events delayed in transit...@."
          (hms ((s + 1) * step))
          (List.length (batch s))
      else begin
        deliver s;
        if s = held + 1 then begin
          Format.printf "[%s] ...late batch arrives: revising the affected vessels@."
            (hms ((s + 1) * step));
          deliver held
        end
      end;
      (* The wall clock advances whether or not the data kept up. *)
      match Runtime.Service.tick svc ~now:((s + 1) * step) with
      | Ok r -> report ((s + 1) * step) r
      | Error e -> Format.printf "[%s] service error: %s@." (hms ((s + 1) * step)) e)
    slot_ids;

  match Runtime.Service.drain svc with
  | Error e -> prerr_endline ("drain failed: " ^ e)
  | Ok (r : Runtime.Service.result) ->
    let s = r.stats in
    Format.printf "@.%d distinct activity instances recognised online.@."
      (Hashtbl.length seen);
    Format.printf
      "service: %d queries over %d entity shards; %d late events, %d dropped, %d \
       revisions@."
      s.queries s.buckets s.late_events s.dropped_late s.revisions;
    (* The punchline: out-of-order arrival within the horizon does not
       change the answer. *)
    let batch_result =
      match
        Runtime.run
          ~config:(Runtime.config ~window ~step ())
          ~event_description:ed ~knowledge:dataset.knowledge ~stream:dataset.stream ()
      with
      | Ok (result, _) -> result
      | Error e -> failwith e
    in
    Format.printf "identical to the in-order batch run: %b@." (Lazy.force r.intervals = batch_result)
