(* Quickstart: write an RTEC activity definition, feed a small event
   stream, query the maximal intervals and time-points.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. An event description in concrete RTEC syntax: rules (1)-(3) of the
     paper, defining when a vessel is within an area of some type. *)
  let event_description =
    [
      Rtec.Parser.parse_definition ~name:"withinArea"
        {|
          initiatedAt(withinArea(Vessel, AreaType) = true, T) :-
              happensAt(entersArea(Vessel, Area), T),
              areaType(Area, AreaType).
          terminatedAt(withinArea(Vessel, AreaType) = true, T) :-
              happensAt(leavesArea(Vessel, Area), T),
              areaType(Area, AreaType).
          terminatedAt(withinArea(Vessel, AreaType) = true, T) :-
              happensAt(gap_start(Vessel), T).
        |};
    ]
  in

  (* 2. Atemporal background knowledge: area a1 is a fishing area. *)
  let knowledge = Rtec.Knowledge.of_source "areaType(a1, fishing). areaType(a2, natura)." in

  (* 3. A stream of input events. *)
  let stream =
    Rtec.Stream.make
      (List.map
         (fun (time, src) -> { Rtec.Stream.time; term = Rtec.Parser.parse_term src })
         [
           (10, "entersArea(v42, a1)");
           (55, "leavesArea(v42, a1)");
           (70, "entersArea(v42, a2)");
           (95, "gap_start(v42)");
         ])
  in

  (* 4. Recognise: compute the maximal intervals of every fluent-value
     pair. [Runtime.run] is the application entry point (windowing,
     entity sharding and the streaming service all live behind it); the
     low-level [Rtec.Engine.run] remains for single fixed-range queries. *)
  match Runtime.run ~config:Runtime.default ~event_description ~knowledge ~stream () with
  | Error e -> prerr_endline ("recognition failed: " ^ e)
  | Ok (result, _) ->
    List.iter
      (fun ((fluent, value), intervals) ->
        Format.printf "%a = %a holds for %a@." Rtec.Term.pp fluent Rtec.Term.pp value
          Rtec.Interval.pp intervals)
      result;
    (* 5. Point queries. *)
    let fvp =
      (Rtec.Parser.parse_term "withinArea(v42, fishing)", Rtec.Term.Atom "true")
    in
    Format.printf "withinArea(v42, fishing) at t=30? %b@."
      (Rtec.Engine.holds_at result fvp 30);
    Format.printf "withinArea(v42, fishing) at t=60? %b@."
      (Rtec.Engine.holds_at result fvp 60)
